package lock

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Tests for the constant-time grant path: granted-group summaries
// (entry.checkSummary vs a fold over holder storage), pooled wait blocks,
// and deferred deadlock detection (equivalence with the eager walk on the
// canonical cycles), plus allocation regressions for the pooled
// introspection scratch buffers.

// assertSummaries latches every shard and asserts each live entry's
// summaries match a fold over its storage.
func assertSummaries(t *testing.T, m *Manager) {
	t.Helper()
	for _, s := range m.shards {
		s.mu.Lock()
		for r, e := range s.res {
			if err := e.checkSummary(); err != nil {
				s.mu.Unlock()
				t.Fatalf("entry %q: summary mismatch: %v", r, err)
			}
		}
		s.mu.Unlock()
	}
}

// TestSummaryMatchesFoldSequential drives one manager through a long
// deterministic random mix of grants, conversions, downgrades and releases
// — including spilling a hot entry past inlineHolders — checking every
// entry's summaries against the fold after each step.
func TestSummaryMatchesFoldSequential(t *testing.T) {
	m := NewManager(Options{})
	rng := rand.New(rand.NewSource(9))
	resources := []Resource{"root", "cell/a", "cell/b", "leaf/1", "leaf/2"}
	modes := []Mode{IS, IX, S, SIX, X}
	const txns = 24 // enough concurrent IS holders on "root" to spill

	for step := 0; step < 4000; step++ {
		txn := TxnID(1 + rng.Intn(txns))
		r := resources[rng.Intn(len(resources))]
		switch op := rng.Intn(10); {
		case op < 6: // acquire (no-wait so a single goroutine never parks)
			mode := modes[rng.Intn(len(modes))]
			if r == "root" && op < 4 {
				mode = IS // keep the root hot with compatible holders
			}
			err := m.AcquireCtx(context.Background(), txn, r, mode, WithNoWait())
			if err != nil && !errors.Is(err, ErrWouldBlock) {
				t.Fatalf("step %d: acquire: %v", step, err)
			}
		case op < 7: // downgrade (skip targets the held mode does not cover)
			if held := m.HeldMode(txn, r); held != None {
				down := []Mode{None, IS, IX, S}[rng.Intn(4)]
				if held.Covers(down) {
					if err := m.Downgrade(txn, r, down); err != nil {
						t.Fatalf("step %d: downgrade: %v", step, err)
					}
				}
			}
		case op < 9: // release one resource
			m.Release(txn, r)
		default: // release everything
			m.ReleaseAll(txn)
		}
		assertSummaries(t, m)
	}
	for txn := TxnID(1); txn <= txns; txn++ {
		m.ReleaseAll(txn)
	}
	assertSummaries(t, m)
	if n := m.LockCount(); n != 0 {
		t.Fatalf("locks leaked: %d", n)
	}
}

// TestSummaryStressConcurrent hammers the manager from many goroutines
// (blocking acquires, conversions, downgrades, deadlock resolution) while a
// checker goroutine repeatedly validates every entry's summaries under the
// shard latch. Run with -race this also exercises the pooled waiter
// lifecycle under grant/timeout/victim races.
func TestSummaryStressConcurrent(t *testing.T) {
	m := NewManager(Options{})
	resources := []Resource{"root", "a", "b", "c", "d"}
	modes := []Mode{IS, IX, S, SIX, X}
	const workers = 12

	stop := make(chan struct{})
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range m.shards {
				s.mu.Lock()
				for r, e := range s.res {
					if err := e.checkSummary(); err != nil {
						s.mu.Unlock()
						t.Errorf("entry %q: summary mismatch: %v", r, err)
						return
					}
				}
				s.mu.Unlock()
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id TxnID, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 150; k++ {
				r := resources[rng.Intn(len(resources))]
				mode := modes[rng.Intn(len(modes))]
				err := m.AcquireCtx(context.Background(), id, r, mode,
					WithTimeout(time.Duration(1+rng.Intn(3))*time.Millisecond))
				if err != nil {
					m.ReleaseAll(id)
					continue
				}
				if rng.Intn(4) == 0 {
					_ = m.Downgrade(id, r, IS)
				}
				if rng.Intn(3) == 0 {
					m.ReleaseAll(id)
				}
			}
			m.ReleaseAll(id)
		}(TxnID(w+1), int64(w)*7919)
	}
	wg.Wait()
	close(stop)
	checker.Wait()

	assertSummaries(t, m)
	if n := m.LockCount(); n != 0 {
		t.Fatalf("locks leaked: %d", n)
	}
}

// detectionConfigs are the two detection schedules whose observable
// semantics must agree: the eager inline walk and the deferred detector
// with a short arming window.
func detectionConfigs() map[string]Options {
	return map[string]Options{
		"eager":    {EagerDetection: true},
		"deferred": {DeadlockDefer: 200 * time.Microsecond},
	}
}

// TestDeferredEagerEquivalenceTwoTxn runs the canonical AB-BA cycle under
// both schedules: the younger transaction must be the victim, the survivor
// must complete, and exactly one deadlock must be counted.
func TestDeferredEagerEquivalenceTwoTxn(t *testing.T) {
	for name, opts := range detectionConfigs() {
		t.Run(name, func(t *testing.T) {
			m := NewManager(opts)
			defer m.Close()
			if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
				t.Fatal(err)
			}
			if err := m.AcquireCtx(context.Background(), 2, "b", X); err != nil {
				t.Fatal(err)
			}
			r1 := make(chan error, 1)
			go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()
			time.Sleep(20 * time.Millisecond)

			err2 := m.AcquireCtx(context.Background(), 2, "a", X) // closes the cycle
			if !errors.Is(err2, ErrDeadlock) {
				t.Fatalf("txn 2: want ErrDeadlock, got %v", err2)
			}
			m.ReleaseAll(2)
			if err := <-r1; err != nil {
				t.Fatalf("txn 1 (survivor): %v", err)
			}
			m.ReleaseAll(1)
			if got := m.Stats().Deadlocks; got != 1 {
				t.Errorf("Deadlocks = %d, want 1", got)
			}
		})
	}
}

// TestDeferredEagerEquivalenceThreeTxn runs the 3-txn cross-shard cycle
// a→b→c→a under both schedules; txn 3 (youngest) must die, the chain must
// drain.
func TestDeferredEagerEquivalenceThreeTxn(t *testing.T) {
	for name, opts := range detectionConfigs() {
		t.Run(name, func(t *testing.T) {
			m := NewManager(opts)
			defer m.Close()
			_ = m.AcquireCtx(context.Background(), 1, "a", X)
			_ = m.AcquireCtx(context.Background(), 2, "b", X)
			_ = m.AcquireCtx(context.Background(), 3, "c", X)

			r1 := make(chan error, 1)
			r2 := make(chan error, 1)
			go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()
			time.Sleep(20 * time.Millisecond)
			go func() { r2 <- m.AcquireCtx(context.Background(), 2, "c", X) }()
			time.Sleep(20 * time.Millisecond)

			err3 := m.AcquireCtx(context.Background(), 3, "a", X)
			if !errors.Is(err3, ErrDeadlock) {
				t.Fatalf("txn 3: want ErrDeadlock, got %v", err3)
			}
			m.ReleaseAll(3)
			if err := <-r2; err != nil {
				t.Fatal(err)
			}
			m.ReleaseAll(2)
			if err := <-r1; err != nil {
				t.Fatal(err)
			}
			m.ReleaseAll(1)
			if got := m.Stats().Deadlocks; got != 1 {
				t.Errorf("Deadlocks = %d, want 1", got)
			}
		})
	}
}

// TestDeferredDetectionCounters checks the new Stats plumbing: a resolved
// deferred deadlock must surface DeferredDetections and DetectorRuns, and
// ordinary grants must hit the summary fast path.
func TestDeferredDetectionCounters(t *testing.T) {
	m := NewManager(Options{DeadlockDefer: 200 * time.Microsecond})
	defer m.Close()
	_ = m.AcquireCtx(context.Background(), 1, "a", X)
	_ = m.AcquireCtx(context.Background(), 2, "b", X)
	r1 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.AcquireCtx(context.Background(), 2, "a", X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)

	st := m.Stats()
	if st.DeferredDetections == 0 {
		t.Errorf("DeferredDetections = 0, want > 0")
	}
	if st.DetectorRuns == 0 {
		t.Errorf("DetectorRuns = 0, want > 0")
	}
	if st.SummaryFastChecks == 0 {
		t.Errorf("SummaryFastChecks = 0, want > 0")
	}
	if st.Deadlocks != 1 {
		t.Errorf("Deadlocks = %d, want 1", st.Deadlocks)
	}

	m.ResetStats()
	st = m.Stats()
	if st.DeferredDetections != 0 || st.DetectorRuns != 0 || st.SummaryFastChecks != 0 {
		t.Errorf("ResetStats left grant-path counters: %+v", st)
	}
}

// TestEagerDetectionIsSynchronous pins the EagerDetection contract: the
// walk runs on the enqueue itself, so the cycle-closing Acquire observes
// its deadlock with zero detector involvement.
func TestEagerDetectionIsSynchronous(t *testing.T) {
	m := NewManager(Options{EagerDetection: true})
	_ = m.AcquireCtx(context.Background(), 1, "a", X)
	_ = m.AcquireCtx(context.Background(), 2, "b", X)
	r1 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.AcquireCtx(context.Background(), 2, "a", X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	st := m.Stats()
	if st.DeferredDetections != 0 {
		t.Errorf("DeferredDetections = %d, want 0 under EagerDetection", st.DeferredDetections)
	}
	if st.DetectorRuns == 0 {
		t.Errorf("DetectorRuns = 0, want > 0 (eager walks count too)")
	}
}

// TestCloseFallsBackToInlineDetection: after Close the background detector
// is gone, so deadlock checks must run inline regardless of DeadlockDefer —
// a cycle formed after Close still resolves promptly.
func TestCloseFallsBackToInlineDetection(t *testing.T) {
	m := NewManager(Options{DeadlockDefer: time.Hour})
	m.Close()
	_ = m.AcquireCtx(context.Background(), 1, "a", X)
	_ = m.AcquireCtx(context.Background(), 2, "b", X)
	r1 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()
	time.Sleep(20 * time.Millisecond)

	r2 := make(chan error, 1)
	go func() { r2 <- m.AcquireCtx(context.Background(), 2, "a", X) }()
	select {
	case err := <-r2:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("want ErrDeadlock, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock not resolved after Close (inline fallback missing)")
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

// TestDeferralElidesWalkForShortWaits: a conflict that resolves within the
// deferral window should never wake the detector — the whole point of
// deferring is that short waits cost no graph walk.
func TestDeferralElidesWalkForShortWaits(t *testing.T) {
	m := NewManager(Options{DeadlockDefer: time.Second})
	defer m.Close()
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.AcquireCtx(context.Background(), 2, "a", X) }()
	time.Sleep(20 * time.Millisecond) // blocked, but well inside the window
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	st := m.Stats()
	if st.DeferredDetections == 0 {
		t.Errorf("DeferredDetections = 0, want > 0 (the waiter was armed)")
	}
	if st.DetectorRuns != 0 {
		t.Errorf("DetectorRuns = %d, want 0 (wait resolved inside the window)", st.DetectorRuns)
	}
}

// TestIntrospectionScratchZeroAlloc pins the satellite requirement: with
// the pooled scratch buffers warmed up, the waits-for expansion of a
// blocked transaction allocates nothing.
func TestIntrospectionScratchZeroAlloc(t *testing.T) {
	m := NewManager(Options{Policy: PolicyNone})
	for txn := TxnID(1); txn <= 6; txn++ {
		if err := m.AcquireCtx(context.Background(), txn, "hot", S); err != nil {
			t.Fatal(err)
		}
	}
	got := make(chan error, 1)
	go func() { got <- m.AcquireCtx(context.Background(), 7, "hot", X) }()
	for i := 0; i < 200 && m.WaitingTxns() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if m.WaitingTxns() != 1 {
		t.Fatal("waiter never blocked")
	}

	sc := getBlockScratch()
	// Warm the scratch so map growth is out of the measurement.
	clear(sc.seen)
	_, _, sc.out = m.appendWaitsFor(7, sc.out[:0], sc.seen)
	allocs := testing.AllocsPerRun(100, func() {
		clear(sc.seen)
		_, _, sc.out = m.appendWaitsFor(7, sc.out[:0], sc.seen)
	})
	if len(sc.out) != 6 {
		t.Fatalf("blockers = %d, want 6", len(sc.out))
	}
	putBlockScratch(sc)
	if allocs != 0 {
		t.Errorf("appendWaitsFor allocs/op = %.1f, want 0", allocs)
	}

	m.ReleaseAll(1)
	for txn := TxnID(2); txn <= 6; txn++ {
		m.ReleaseAll(txn)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(7)
}

// TestSpillAndRecycle pushes one resource past inlineHolders (spilling the
// entry to its map), drains it, and re-populates the recycled entry,
// checking the summaries and visible holder set at each stage.
func TestSpillAndRecycle(t *testing.T) {
	m := NewManager(Options{Shards: 1})
	const n = inlineHolders * 2
	for txn := TxnID(1); txn <= n; txn++ {
		if err := m.AcquireCtx(context.Background(), txn, "obj", IS); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Holders("obj")); got != n {
		t.Fatalf("holders = %d, want %d", got, n)
	}
	assertSummaries(t, m)

	// Oldest-holder bound must survive removals from both storage regimes.
	m.ReleaseAll(1)
	assertSummaries(t, m)
	for txn := TxnID(2); txn <= n; txn++ {
		m.ReleaseAll(txn)
	}
	if m.LockCount() != 0 {
		t.Fatalf("locks leaked: %d", m.LockCount())
	}

	// The entry was recycled; a fresh population must start clean.
	for txn := TxnID(1); txn <= 3; txn++ {
		if err := m.AcquireCtx(context.Background(), txn, "obj", S); err != nil {
			t.Fatal(err)
		}
	}
	assertSummaries(t, m)
	if got := m.Holders("obj"); len(got) != 3 || got[2] != S {
		t.Fatalf("holders after recycle = %v", got)
	}
	for txn := TxnID(1); txn <= 3; txn++ {
		m.ReleaseAll(txn)
	}
}

// TestEntrySummaryUnit drives a bare entry through targeted mutations —
// add/convert/remove across the spill boundary, queue churn — validating
// checkSummary and the O(1) decisions against brute-force answers.
func TestEntrySummaryUnit(t *testing.T) {
	e := getEntry()
	check := func() {
		t.Helper()
		if err := e.checkSummary(); err != nil {
			t.Fatal(err)
		}
	}
	modes := []Mode{IS, IX, S, SIX, X}
	rng := rand.New(rand.NewSource(41))
	live := map[TxnID]Mode{}
	for step := 0; step < 2000; step++ {
		txn := TxnID(1 + rng.Intn(20))
		switch op := rng.Intn(10); {
		case op < 5:
			mode := modes[rng.Intn(len(modes))]
			if cur, ok := live[txn]; ok {
				e.setMode(e.holder(txn), Sup(cur, mode))
				live[txn] = Sup(cur, mode)
			} else {
				h := e.addHolder(txn)
				e.setMode(h, mode)
				live[txn] = mode
			}
		case op < 8:
			if _, ok := live[txn]; ok {
				h, found := e.removeHolder(txn)
				if !found || h.mode != live[txn] {
					t.Fatalf("removeHolder(%d) = (%v,%v), want mode %v", txn, h.mode, found, live[txn])
				}
				delete(live, txn)
			}
		default:
			if _, ok := live[txn]; ok {
				down := []Mode{IS, IX, S}[rng.Intn(3)]
				e.setMode(e.holder(txn), down)
				live[txn] = down
			}
		}
		check()

		// Cross-check the O(1) decision against brute force for a random probe.
		probe := TxnID(1 + rng.Intn(20))
		target := modes[rng.Intn(len(modes))]
		own := live[probe]
		want := true
		for t2, m2 := range live {
			if t2 != probe && !compat[target][m2] {
				want = false
				break
			}
		}
		if got := e.compatGranted(own, target); got != want {
			t.Fatalf("step %d: compatGranted(%v,%v) = %v, want %v (live=%v)", step, own, target, got, want, live)
		}
	}
	for txn := range live {
		e.removeHolder(txn)
		check()
	}
	if !e.empty() {
		t.Fatalf("entry not empty after draining")
	}
	putEntry(e)
}

// TestWaiterPoolDrainsRacedOutcome: a waiter recycled after losing a
// timeout/grant race must not wake its next life spuriously.
func TestWaiterPoolDrainsRacedOutcome(t *testing.T) {
	w := getWaiter()
	w.ready <- nil // simulate a raced grant that the owner never consumed
	putWaiter(w)
	w2 := getWaiter()
	select {
	case err := <-w2.ready:
		t.Fatalf("recycled waiter carried stale outcome %v", err)
	default:
	}
	putWaiter(w2)
}
