package lock

import (
	"context"
	"time"
)

// AdmissionMode selects what a saturated gate does with new work.
type AdmissionMode int

const (
	// AdmitShed makes Admit delay new transactions while the waits-for
	// graph is saturated and shed them with ErrShed once MaxDelay is
	// exhausted. Acquires from already-admitted transactions are unaffected.
	AdmitShed AdmissionMode = iota
	// AdmitDegrade admits every transaction but flips conflicting acquires
	// to fail-fast while saturated: a request that would have queued returns
	// ErrShed immediately (as if WithNoWait had been passed), pushing the
	// retry decision to the caller instead of deepening the queues.
	AdmitDegrade
)

// String implements fmt.Stringer.
func (am AdmissionMode) String() string {
	switch am {
	case AdmitShed:
		return "shed"
	case AdmitDegrade:
		return "degrade"
	}
	return "unknown"
}

// AdmissionConfig bounds how much queued contention the manager tolerates
// before it starts refusing work. The gate is keyed on live waiter depth —
// the number of transactions currently parked in wait queues — because that
// is the quantity that grows without bound during a contention storm while
// everything else (goroutines, held locks) stays flat.
type AdmissionConfig struct {
	// MaxWaiters is the waiter-depth threshold. The gate engages while
	// WaitingTxns() >= MaxWaiters. Zero or negative disables admission
	// control entirely.
	MaxWaiters int
	// MaxDelay bounds how long Admit stalls a new transaction waiting for
	// the storm to drain before shedding it (AdmitShed mode). Zero means
	// shed immediately when saturated.
	MaxDelay time.Duration
	// Poll is the re-check interval while stalling in Admit. Defaults to
	// 1ms when zero.
	Poll time.Duration
	// Mode selects shedding (refuse Begin) or degradation (fail-fast
	// conflicting acquires).
	Mode AdmissionMode
}

// ConfigureAdmission installs (or replaces) the admission gate. A zero
// MaxWaiters disables it. Safe to call concurrently with acquires.
func (m *Manager) ConfigureAdmission(cfg AdmissionConfig) {
	if cfg.MaxWaiters <= 0 {
		m.admission.Store(nil)
		return
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Millisecond
	}
	c := cfg
	m.admission.Store(&c)
}

// AdmissionConfigured reports the active gate, if any.
func (m *Manager) AdmissionConfigured() (AdmissionConfig, bool) {
	p := m.admission.Load()
	if p == nil {
		return AdmissionConfig{}, false
	}
	return *p, true
}

// saturated reports whether the live waiter depth has reached the
// configured threshold.
func (m *Manager) saturated(cfg *AdmissionConfig) bool {
	return len(m.wf.txns()) >= cfg.MaxWaiters
}

// degradeSaturated reports whether degrade-mode fail-fast is in force right
// now: an AdmitDegrade gate is installed and the waiter depth is at or past
// its threshold. Checked on the acquire slow path, before enqueueing.
func (m *Manager) degradeSaturated() bool {
	cfg := m.admission.Load()
	if cfg == nil || cfg.Mode != AdmitDegrade {
		return false
	}
	return m.saturated(cfg)
}

// Admit gates the start of a new transaction. With no gate configured, or
// in AdmitDegrade mode, it admits immediately. In AdmitShed mode it stalls
// — polling the waiter depth every Poll — until the storm drains or
// MaxDelay elapses, then sheds with ErrShed. The caller's ctx cancels the
// stall early (returning the ctx error wrapped in a *LockError so callers
// classify uniformly). txn names the transaction being admitted, for the
// error only; no state is recorded for it.
func (m *Manager) Admit(ctx context.Context, txn TxnID) error {
	cfg := m.admission.Load()
	if cfg == nil || cfg.Mode != AdmitShed || !m.saturated(cfg) {
		return nil
	}
	m.admitDelays.Add(1)
	deadline := time.Now().Add(cfg.MaxDelay)
	ticker := time.NewTicker(cfg.Poll)
	defer ticker.Stop()
	for {
		if cfg.MaxDelay <= 0 || !time.Now().Before(deadline) {
			m.sheds.Add(1)
			return lockErr(txn, "", 0, ErrShed)
		}
		select {
		case <-ctx.Done():
			return lockErr(txn, "", 0, ctx.Err())
		case <-ticker.C:
			// Re-read the config each round so ConfigureAdmission takes
			// effect for transactions already stalled in Admit.
			cfg = m.admission.Load()
			if cfg == nil || cfg.Mode != AdmitShed || !m.saturated(cfg) {
				return nil
			}
		}
	}
}
