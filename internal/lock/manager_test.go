package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGrantCompatible(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 3, "a", IS); err != nil {
		t.Fatal(err)
	}
	if got := m.LockCount(); got != 3 {
		t.Errorf("LockCount = %d, want 3", got)
	}
}

func TestConflictBlocksUntilRelease(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.AcquireCtx(context.Background(), 2, "a", S) }()
	select {
	case err := <-got:
		t.Fatalf("S granted while X held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken after release")
	}
	if m.HeldMode(2, "a") != S {
		t.Errorf("txn 2 holds %v, want S", m.HeldMode(2, "a"))
	}
}

func TestTryAcquire(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X, WithNoWait()); err != nil {
		t.Fatal(err)
	}
	err := m.AcquireCtx(context.Background(), 2, "a", IS, WithNoWait())
	if !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	if err := m.AcquireCtx(context.Background(), 1, "a", X, WithNoWait()); err != nil {
		t.Fatalf("re-acquire by holder failed: %v", err)
	}
}

func TestRegrantIsNoop(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, "a", IS); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Regrants != 2 {
		t.Errorf("Regrants = %d, want 2", st.Regrants)
	}
	if st.Grants != 1 {
		t.Errorf("Grants = %d, want 1", st.Grants)
	}
	if m.HeldMode(1, "a") != X {
		t.Errorf("mode = %v, want X", m.HeldMode(1, "a"))
	}
}

func TestConversionToSupremum(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", IX); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(1, "a"); got != SIX {
		t.Errorf("after IX+S conversion mode = %v, want SIX", got)
	}
	if m.Stats().Conversions != 1 {
		t.Errorf("Conversions = %d, want 1", m.Stats().Conversions)
	}
}

func TestConversionWaitsForOtherHolders(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "a", S); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.AcquireCtx(context.Background(), 1, "a", X) }() // upgrade blocked by txn 2
	select {
	case err := <-got:
		t.Fatalf("upgrade granted while S held by other: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, "a") != X {
		t.Errorf("mode = %v, want X", m.HeldMode(1, "a"))
	}
}

// TestConversionPriority: a conversion jumps ahead of plain waiters.
func TestConversionPriority(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "a", S); err != nil {
		t.Fatal(err)
	}
	// Txn 3 queues for X first.
	got3 := make(chan error, 1)
	go func() { got3 <- m.AcquireCtx(context.Background(), 3, "a", X) }()
	time.Sleep(20 * time.Millisecond)
	// Txn 1 requests upgrade; placed ahead of txn 3.
	got1 := make(chan error, 1)
	go func() { got1 <- m.AcquireCtx(context.Background(), 1, "a", X) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatalf("conversion: %v", err)
	}
	select {
	case err := <-got3:
		t.Fatalf("plain waiter granted before conversion holder released: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got3; err != nil {
		t.Fatal(err)
	}
}

// TestFIFOFairness: a new S request must queue behind a waiting X request
// even though it is compatible with the granted group (no starvation).
func TestFIFOFairness(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	gotX := make(chan error, 1)
	go func() { gotX <- m.AcquireCtx(context.Background(), 2, "a", X) }()
	time.Sleep(20 * time.Millisecond)
	gotS := make(chan error, 1)
	go func() { gotS <- m.AcquireCtx(context.Background(), 3, "a", S) }()
	select {
	case err := <-gotS:
		t.Fatalf("S bypassed waiting X: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-gotX; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-gotS; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseSingleResource(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, "b", X); err != nil {
		t.Fatal(err)
	}
	m.Release(1, "a")
	if m.HeldMode(1, "a") != None {
		t.Error("a still held after Release")
	}
	if m.HeldMode(1, "b") != X {
		t.Error("b dropped by Release of a")
	}
	m.Release(1, "a") // releasing unheld is a no-op
	m.Release(9, "b")
	if m.HeldMode(1, "b") != X {
		t.Error("b dropped by foreign Release")
	}
}

func TestHeldLocksOrdered(t *testing.T) {
	m := NewManager(Options{})
	for _, r := range []Resource{"db", "seg", "rel", "obj"} {
		if err := m.AcquireCtx(context.Background(), 7, r, IX); err != nil {
			t.Fatal(err)
		}
	}
	held := m.HeldLocks(7)
	if len(held) != 4 {
		t.Fatalf("held %d locks, want 4", len(held))
	}
	want := []Resource{"db", "seg", "rel", "obj"}
	for i, h := range held {
		if h.Resource != want[i] {
			t.Errorf("held[%d] = %q, want %q (acquisition order)", i, h.Resource, want[i])
		}
		if h.Mode != IX {
			t.Errorf("held[%d].Mode = %v", i, h.Mode)
		}
	}
}

func TestHolders(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", IS)
	_ = m.AcquireCtx(context.Background(), 2, "a", IX)
	h := m.Holders("a")
	if len(h) != 2 || h[1] != IS || h[2] != IX {
		t.Errorf("Holders = %v", h)
	}
	if len(m.Holders("nope")) != 0 {
		t.Error("Holders of unknown resource non-empty")
	}
}

func TestInvalidMode(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", None); err == nil {
		t.Error("Acquire(None) succeeded")
	}
	if err := m.AcquireCtx(context.Background(), 1, "a", Mode(42)); err == nil {
		t.Error("Acquire(invalid) succeeded")
	}
}

func TestEventTrace(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	m := NewManager(Options{OnEvent: func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}})
	_ = m.AcquireCtx(context.Background(), 1, "a", S)
	_ = m.AcquireCtx(context.Background(), 1, "a", X) // conversion
	m.ReleaseAll(1)
	mu.Lock()
	defer mu.Unlock()
	kinds := make([]string, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	want := []string{"grant", "convert", "release", "release-all"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want kinds %v", events, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event[%d] = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestStatsCounters(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", X)
	_ = m.AcquireCtx(context.Background(), 2, "a", S, WithNoWait()) // conflict, no wait
	m.ReleaseAll(1)
	st := m.Stats()
	if st.Requests != 2 || st.Grants != 1 || st.Conflicts != 1 || st.Waits != 0 || st.Releases != 1 {
		t.Errorf("stats = %+v", st)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Requests: 5, Grants: 3, MaxTableSize: 7}
	b := Stats{Requests: 2, Grants: 1, MaxTableSize: 9}
	sum := a.Add(b)
	if sum.Requests != 7 || sum.Grants != 4 || sum.MaxTableSize != 9 {
		t.Errorf("Add = %+v", sum)
	}
	d := sum.Sub(b)
	if d.Requests != 5 || d.Grants != 3 {
		t.Errorf("Sub = %+v", d)
	}
}

// TestConcurrentStress hammers a small resource set from many goroutines and
// checks the manager never grants incompatible locks simultaneously.
func TestConcurrentStress(t *testing.T) {
	m := NewManager(Options{})
	resources := []Resource{"r0", "r1", "r2"}
	var wg sync.WaitGroup
	var violations sync.Map
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				r := resources[int(id)%len(resources)]
				mode := S
				if k%3 == 0 {
					mode = X
				}
				if err := m.AcquireCtx(context.Background(), id, r, mode); err != nil {
					m.ReleaseAll(id)
					continue
				}
				// Verify the granted group is internally compatible.
				hs := m.Holders(r)
				for t1, m1 := range hs {
					for t2, m2 := range hs {
						if t1 != t2 && !m1.Compatible(m2) {
							violations.Store(r, [2]Mode{m1, m2})
						}
					}
				}
				m.ReleaseAll(id)
			}
		}(TxnID(i + 1))
	}
	wg.Wait()
	violations.Range(func(k, v any) bool {
		t.Errorf("incompatible grant on %v: %v", k, v)
		return true
	})
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}
