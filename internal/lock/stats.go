package lock

// Stats are cumulative lock-manager counters. They quantify the
// "administrative overhead of locks and conflict tests" that the paper's
// qualitative evaluation argues about.
type Stats struct {
	// Requests counts every Acquire/TryAcquire call.
	Requests uint64
	// Regrants counts requests already covered by a held lock (no-ops).
	Regrants uint64
	// Grants counts newly created lock-table entries.
	Grants uint64
	// Conversions counts in-place mode upgrades of existing entries.
	Conversions uint64
	// Conflicts counts requests that could not be granted immediately.
	Conflicts uint64
	// Waits counts requests that actually blocked.
	Waits uint64
	// Deadlocks counts detected deadlock cycles.
	Deadlocks uint64
	// Timeouts counts requests withdrawn by AcquireTimeout/WithTimeout
	// deadlines.
	Timeouts uint64
	// Cancels counts requests withdrawn by AcquireCtx context cancellation.
	Cancels uint64
	// Downgrades counts in-place mode downgrades (de-escalation).
	Downgrades uint64
	// Releases counts dropped lock-table entries.
	Releases uint64
	// Sheds counts work refused by admission control: Begins shed by Admit
	// plus degrade-mode fast-fails.
	Sheds uint64
	// AdmitDelays counts Admit calls that had to stall before passing or
	// shedding (the gate was saturated when they arrived).
	AdmitDelays uint64
	// DegradedAcquires counts acquires refused fast-fail by degrade-mode
	// admission control (a subset of Sheds).
	DegradedAcquires uint64
	// InjectedFaults counts synthetic failures produced by a configured
	// fault Injector.
	InjectedFaults uint64
	// Batches counts AcquireBatch calls.
	Batches uint64
	// BatchFastGrants counts requests granted on the AcquireBatch fast path
	// (all compatible, granted under one multi-shard latch acquisition).
	BatchFastGrants uint64
	// BatchFallbacks counts AcquireBatch calls that hit a conflict and fell
	// back to the single-resource wait path for the remaining requests.
	BatchFallbacks uint64
	// SummaryFastChecks counts acquire-path grant/deny decisions answered
	// entirely by the O(1) granted-group summaries (per-mode counts, cached
	// group mode, queue-mode summary) without touching holder storage or
	// scanning the wait queue.
	SummaryFastChecks uint64
	// DeferredDetections counts blocked requests whose deadlock check was
	// handed to the background detector instead of walking the waits-for
	// graph inline on enqueue (Options.DeadlockDefer).
	DeferredDetections uint64
	// DetectorRuns counts waits-for walks actually executed for still-blocked
	// waiters — by the background detector or the eager inline path. The gap
	// DeferredDetections−DetectorRuns is work the deferral window elided.
	DetectorRuns uint64
	// MaxTableSize is the high-water mark of granted lock-table entries.
	MaxTableSize int
}

// Add returns the field-wise sum of s and o (MaxTableSize takes the max).
func (s Stats) Add(o Stats) Stats {
	s.Requests += o.Requests
	s.Regrants += o.Regrants
	s.Grants += o.Grants
	s.Conversions += o.Conversions
	s.Conflicts += o.Conflicts
	s.Waits += o.Waits
	s.Deadlocks += o.Deadlocks
	s.Timeouts += o.Timeouts
	s.Cancels += o.Cancels
	s.Downgrades += o.Downgrades
	s.Releases += o.Releases
	s.Sheds += o.Sheds
	s.AdmitDelays += o.AdmitDelays
	s.DegradedAcquires += o.DegradedAcquires
	s.InjectedFaults += o.InjectedFaults
	s.Batches += o.Batches
	s.BatchFastGrants += o.BatchFastGrants
	s.BatchFallbacks += o.BatchFallbacks
	s.SummaryFastChecks += o.SummaryFastChecks
	s.DeferredDetections += o.DeferredDetections
	s.DetectorRuns += o.DetectorRuns
	if o.MaxTableSize > s.MaxTableSize {
		s.MaxTableSize = o.MaxTableSize
	}
	return s
}

// Sub returns the field-wise difference s−o, used to attribute counters to
// a benchmark phase. MaxTableSize is carried over from s unchanged.
func (s Stats) Sub(o Stats) Stats {
	s.Requests -= o.Requests
	s.Regrants -= o.Regrants
	s.Grants -= o.Grants
	s.Conversions -= o.Conversions
	s.Conflicts -= o.Conflicts
	s.Waits -= o.Waits
	s.Deadlocks -= o.Deadlocks
	s.Timeouts -= o.Timeouts
	s.Cancels -= o.Cancels
	s.Downgrades -= o.Downgrades
	s.Releases -= o.Releases
	s.Sheds -= o.Sheds
	s.AdmitDelays -= o.AdmitDelays
	s.DegradedAcquires -= o.DegradedAcquires
	s.InjectedFaults -= o.InjectedFaults
	s.Batches -= o.Batches
	s.BatchFastGrants -= o.BatchFastGrants
	s.BatchFallbacks -= o.BatchFallbacks
	s.SummaryFastChecks -= o.SummaryFastChecks
	s.DeferredDetections -= o.DeferredDetections
	s.DetectorRuns -= o.DetectorRuns
	return s
}
