package lock

import (
	"context"
	"testing"
	"time"
)

func TestSnapshotContainsOnlyDurable(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "cells/c1", X, WithDurable())
	_ = m.AcquireCtx(context.Background(), 2, "cells/c2", S) // short lock: must not survive
	_ = m.AcquireCtx(context.Background(), 1, "cells/c3", S, WithDurable())

	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d locks, want 2: %v", len(snap), snap)
	}
	if snap[0].Resource != "cells/c1" || snap[0].Mode != X {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Resource != "cells/c3" || snap[1].Mode != S {
		t.Errorf("snap[1] = %+v", snap[1])
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 2, "b", S, WithDurable())
	_ = m.AcquireCtx(context.Background(), 1, "z", S, WithDurable())
	_ = m.AcquireCtx(context.Background(), 1, "a", S, WithDurable())
	snap := m.Snapshot()
	if len(snap) != 3 || snap[0].Txn != 1 || snap[0].Resource != "a" ||
		snap[1].Resource != "z" || snap[2].Txn != 2 {
		t.Errorf("snapshot order = %v", snap)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []DurableLock{{Txn: 1, Resource: "cells/c1", Mode: X}, {Txn: 2, Resource: "effectors/e1", Mode: S}}
	data, err := EncodeSnapshot(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("lock %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("not gob")); err == nil {
		t.Error("decoding garbage succeeded")
	}
}

// TestCrashRestartKeepsLongLocks simulates the paper's workstation scenario:
// a long (check-out) lock survives a crash, a short lock does not, and after
// restart the long lock still blocks conflicting access.
func TestCrashRestartKeepsLongLocks(t *testing.T) {
	m1 := NewManager(Options{})
	_ = m1.AcquireCtx(context.Background(), 100, "cells/c1", X, WithDurable()) // checked out to a workstation
	_ = m1.AcquireCtx(context.Background(), 5, "cells/c2", X)                  // ordinary short transaction

	data, err := EncodeSnapshot(m1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": new manager, restore from the persisted snapshot.
	m2 := NewManager(Options{})
	locks, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(locks); err != nil {
		t.Fatal(err)
	}

	if m2.HeldMode(100, "cells/c1") != X {
		t.Error("long lock lost across restart")
	}
	if m2.HeldMode(5, "cells/c2") != None {
		t.Error("short lock survived restart")
	}
	// The restored lock still synchronizes.
	blocked := make(chan error, 1)
	go func() { blocked <- m2.AcquireCtx(context.Background(), 6, "cells/c1", S) }()
	select {
	case err := <-blocked:
		t.Fatalf("restored X lock did not block: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m2.ReleaseAll(100) // check-in
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestRestoreMergesWithHeld(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", IX)
	if err := m.Restore([]DurableLock{{Txn: 1, Resource: "a", Mode: S}}); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(1, "a"); got != SIX {
		t.Errorf("merged mode = %v, want SIX", got)
	}
}

func TestRestoreConflictFails(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", X)
	err := m.Restore([]DurableLock{{Txn: 2, Resource: "a", Mode: X}})
	if err == nil {
		t.Error("conflicting restore succeeded")
	}
}

func TestDurableUpgradeOfShortLock(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", S)
	_ = m.AcquireCtx(context.Background(), 1, "a", S, WithDurable()) // same mode, now durable
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Mode != S {
		t.Errorf("snapshot = %v, want one durable S", snap)
	}
}
