package lock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The per-resource entry keeps, next to its holder storage and wait queue,
// incrementally maintained summaries that make the grant/deny decision O(1):
//
//   - modeCount[m]: how many holders currently hold mode m,
//   - group: the supremum (Sup fold) of all granted modes — the "group mode"
//     of System R fame. Because the mode lattice is monotone under the
//     compatibility relation (x Covers y ⇒ compat[r][x] ⇒ compat[r][y]),
//     a request compatible with the group mode is compatible with every
//     individual holder, so the common uncontended check is ONE array lookup
//     instead of a scan over dozens of IS/IX holders on a hot DAG root.
//   - queueCount[m]: how many queued waiters target mode m, so the FIFO
//     fairness check ("would I overtake an incompatible earlier waiter?")
//     answers "no conflict" without walking the queue.
//   - oldestHolder/oldestWaiter: lower bounds on the resident transaction
//     IDs, letting wait-die's mustDie prove "I am older than everyone here"
//     (the common survivable case) without a scan.
//
// Exact scans remain as slow paths: when the summaries report a potential
// conflict, the per-holder/per-waiter loops run to honor the self-skip
// semantics (a transaction never conflicts with itself). checkSummary
// asserts summary == fold(storage) and is wired into the -race stress test.
//
// Holder storage is hybrid: an inline slice sorted by TxnID serves entries
// with up to inlineHolders holders allocation-free; past that the entry
// spills to a map (pooled heldLock values). Entries and waiters themselves
// come from sync.Pools — see the lifecycle notes on putWaiter.

// inlineHolders is the holder count past which an entry's inline sorted
// slice spills to a map.
const inlineHolders = 8

// noTxn is the sentinel for "no resident transaction" in the oldest-ID
// bounds: larger than every real TxnID.
const noTxn = TxnID(^uint64(0))

// holderSlot is one inline holder: the key alongside the value so the
// common small entry needs no map at all.
type holderSlot struct {
	txn TxnID
	h   heldLock
}

type entry struct {
	// slots is the inline holder storage, sorted by txn, used while the
	// entry has at most inlineHolders holders and spill is nil. Pointers
	// into slots (from holder/addHolder) are invalidated by the next
	// addHolder/removeHolder call; never hold one across a mutation.
	slots []holderSlot
	// spill owns every holder once the entry has spilled; values are pooled
	// heldLocks. An entry never un-spills (it is recycled when empty).
	spill map[TxnID]*heldLock

	queue []*waiter // conversions are kept ahead of plain waiters

	// Granted-group and queue summaries; see the package comment above.
	modeCount    [numModes]uint16
	queueCount   [numModes]uint16
	group        Mode
	oldestHolder TxnID
	oldestWaiter TxnID
	nHolders     int
}

// holderCount returns the number of granted holders.
func (e *entry) holderCount() int { return e.nHolders }

// holder returns txn's granted lock, or nil. The pointer is valid only
// until the next holder mutation on this entry.
func (e *entry) holder(txn TxnID) *heldLock {
	if e.spill != nil {
		return e.spill[txn]
	}
	for i := range e.slots {
		if e.slots[i].txn == txn {
			return &e.slots[i].h
		}
	}
	return nil
}

// holderMode returns the mode txn holds (None if not a holder).
func (e *entry) holderMode(txn TxnID) Mode {
	if h := e.holder(txn); h != nil {
		return h.mode
	}
	return None
}

// addHolder installs a fresh holder for txn (mode None, counted into no
// summary until setMode) and returns it. txn must not already hold.
func (e *entry) addHolder(txn TxnID) *heldLock {
	e.nHolders++
	if txn < e.oldestHolder {
		e.oldestHolder = txn
	}
	if e.spill == nil && e.nHolders <= inlineHolders {
		// Insert into the sorted inline slice.
		pos := len(e.slots)
		for i := range e.slots {
			if e.slots[i].txn > txn {
				pos = i
				break
			}
		}
		e.slots = append(e.slots, holderSlot{})
		copy(e.slots[pos+1:], e.slots[pos:])
		e.slots[pos] = holderSlot{txn: txn}
		return &e.slots[pos].h
	}
	if e.spill == nil {
		// Spill: move the inline holders into a map and empty the slice.
		e.spill = make(map[TxnID]*heldLock, 2*inlineHolders)
		for i := range e.slots {
			h := getHeld()
			*h = e.slots[i].h
			e.spill[e.slots[i].txn] = h
		}
		e.slots = e.slots[:0]
	}
	h := getHeld()
	e.spill[txn] = h
	return h
}

// removeHolder drops txn's granted lock, returning a copy of it. Summaries
// (modeCount, group, oldestHolder) are maintained here.
func (e *entry) removeHolder(txn TxnID) (heldLock, bool) {
	var h heldLock
	if e.spill != nil {
		p := e.spill[txn]
		if p == nil {
			return h, false
		}
		h = *p
		delete(e.spill, txn)
		putHeld(p)
	} else {
		i := -1
		for j := range e.slots {
			if e.slots[j].txn == txn {
				i = j
				break
			}
		}
		if i < 0 {
			return h, false
		}
		h = e.slots[i].h
		copy(e.slots[i:], e.slots[i+1:])
		e.slots = e.slots[:len(e.slots)-1]
	}
	e.nHolders--
	if h.mode != None {
		e.modeCount[h.mode]--
		e.refreshGroup()
	}
	if txn == e.oldestHolder {
		e.recomputeOldestHolder()
	}
	return h, true
}

// setMode changes a holder's granted mode, keeping modeCount and the cached
// group mode in step. h must be a current holder of this entry.
func (e *entry) setMode(h *heldLock, mode Mode) {
	if h.mode == mode {
		return
	}
	if h.mode != None {
		e.modeCount[h.mode]--
	}
	if mode != None {
		e.modeCount[mode]++
	}
	h.mode = mode
	e.refreshGroup()
}

// refreshGroup recomputes the cached group mode from the per-mode counts —
// O(numModes), never O(holders).
func (e *entry) refreshGroup() {
	g := None
	for mo := Mode(1); mo < numModes; mo++ {
		if e.modeCount[mo] > 0 {
			g = Sup(g, mo)
		}
	}
	e.group = g
}

func (e *entry) recomputeOldestHolder() {
	e.oldestHolder = noTxn
	if e.spill != nil {
		for t := range e.spill {
			if t < e.oldestHolder {
				e.oldestHolder = t
			}
		}
		return
	}
	if len(e.slots) > 0 {
		e.oldestHolder = e.slots[0].txn // slots are sorted by txn
	}
}

// forEachHolder calls fn for every holder until fn returns false. The
// *heldLock is valid only during the callback.
func (e *entry) forEachHolder(fn func(TxnID, *heldLock) bool) {
	if e.spill != nil {
		for t, h := range e.spill {
			if !fn(t, h) {
				return
			}
		}
		return
	}
	for i := range e.slots {
		if !fn(e.slots[i].txn, &e.slots[i].h) {
			return
		}
	}
}

// compatGranted reports whether a request for target by a transaction
// currently holding own (None if not a holder) is compatible with every
// OTHER holder. It is O(numModes): the group-mode lookup answers the
// uncontended case in one array access, and the per-mode counts answer the
// rest without touching holder storage (the requester's own contribution is
// subtracted from its mode's count).
func (e *entry) compatGranted(own, target Mode) bool {
	if compat[target][e.group] {
		return true
	}
	for mo := Mode(1); mo < numModes; mo++ {
		n := e.modeCount[mo]
		if n == 0 || compat[target][mo] {
			continue
		}
		if mo == own {
			n--
		}
		if n > 0 {
			return false
		}
	}
	return true
}

// blockedByQueue reports whether a new (non-conversion) request must queue
// behind existing waiters for fairness. fast reports that the answer came
// from the queue summaries alone (empty queue, or no queued mode conflicts);
// when an incompatible queued mode exists the exact scan runs to honor the
// requester-self skip.
func (e *entry) blockedByQueue(txn TxnID, target Mode) (blocked, fast bool) {
	if len(e.queue) == 0 {
		return false, true
	}
	conflict := false
	for mo := Mode(0); mo < numModes; mo++ {
		if e.queueCount[mo] != 0 && !compat[target][mo] {
			conflict = true
			break
		}
	}
	if !conflict {
		return false, true
	}
	for _, w := range e.queue {
		if w.txn != txn && !compat[target][w.mode] {
			return true, false
		}
	}
	return false, false
}

// grantable decides whether a request (target mode, conversion flag) by txn
// currently holding own can be granted now. fast reports that the whole
// decision was served by the O(1) summaries — the SummaryFastChecks counter.
func (e *entry) grantable(txn TxnID, own, target Mode, convert bool) (ok, fast bool) {
	if !e.compatGranted(own, target) {
		return false, true // counts are summaries too: no storage touched
	}
	if convert {
		// Conversions bypass the queue: the transaction already holds the
		// lock, so FIFO fairness against new requests does not apply.
		return true, true
	}
	blocked, fastQ := e.blockedByQueue(txn, target)
	return !blocked, fastQ
}

// mustDie implements the wait-die rule: the requester dies if it is younger
// (higher TxnID) than any incompatible current holder or queued waiter. The
// oldest-resident bounds prove the common survivable case ("requester is
// older than everyone here") without a scan; only potential deaths — already
// the slow path, they end in an abort — run the exact loops.
func (e *entry) mustDie(txn TxnID, target Mode) bool {
	if txn < e.oldestHolder && txn < e.oldestWaiter {
		return false
	}
	die := false
	e.forEachHolder(func(t TxnID, h *heldLock) bool {
		if t != txn && !compat[target][h.mode] && txn > t {
			die = true
			return false
		}
		return true
	})
	if die {
		return true
	}
	for _, w := range e.queue {
		if w.txn != txn && !compat[target][w.mode] && txn > w.txn {
			return true
		}
	}
	return false
}

// enqueue inserts w into the wait queue (conversions after existing
// conversion waiters but ahead of plain waiters — the classic conversion
// priority) and returns its position. Queue summaries are maintained here.
func (e *entry) enqueue(w *waiter) int {
	pos := len(e.queue)
	if w.convert {
		i := 0
		for i < len(e.queue) && e.queue[i].convert {
			i++
		}
		e.queue = append(e.queue, nil)
		copy(e.queue[i+1:], e.queue[i:])
		e.queue[i] = w
		pos = i
	} else {
		e.queue = append(e.queue, w)
	}
	e.queueCount[w.mode]++
	if w.txn < e.oldestWaiter {
		e.oldestWaiter = w.txn
	}
	return pos
}

// dequeueAt removes and returns the waiter at index i, maintaining the
// queue summaries.
func (e *entry) dequeueAt(i int) *waiter {
	w := e.queue[i]
	copy(e.queue[i:], e.queue[i+1:])
	e.queue[len(e.queue)-1] = nil
	e.queue = e.queue[:len(e.queue)-1]
	e.queueCount[w.mode]--
	if w.txn == e.oldestWaiter {
		e.oldestWaiter = noTxn
		for _, q := range e.queue {
			if q.txn < e.oldestWaiter {
				e.oldestWaiter = q.txn
			}
		}
	}
	return w
}

// removeWaiterPtr removes w (by identity) from the queue, reporting whether
// it was present.
func (e *entry) removeWaiterPtr(w *waiter) bool {
	for i, q := range e.queue {
		if q == w {
			e.dequeueAt(i)
			return true
		}
	}
	return false
}

// empty reports whether the entry can be dropped (and recycled).
func (e *entry) empty() bool { return e.nHolders == 0 && len(e.queue) == 0 }

// checkSummary recomputes every summary from the underlying storage and
// returns an error on any mismatch. The randomized -race stress test calls
// it after every mutation; production code never does.
func (e *entry) checkSummary() error {
	var mc [numModes]uint16
	n := 0
	oldest := noTxn
	e.forEachHolder(func(t TxnID, h *heldLock) bool {
		if h.mode != None {
			mc[h.mode]++
		}
		if t < oldest {
			oldest = t
		}
		n++
		return true
	})
	if n != e.nHolders {
		return fmt.Errorf("nHolders=%d, storage has %d", e.nHolders, n)
	}
	if oldest != e.oldestHolder {
		return fmt.Errorf("oldestHolder=%d, fold gives %d", e.oldestHolder, oldest)
	}
	g := None
	for mo := Mode(1); mo < numModes; mo++ {
		if mc[mo] != e.modeCount[mo] {
			return fmt.Errorf("modeCount[%v]=%d, fold gives %d", mo, e.modeCount[mo], mc[mo])
		}
		if mc[mo] > 0 {
			g = Sup(g, mo)
		}
	}
	if g != e.group {
		return fmt.Errorf("group=%v, fold gives %v", e.group, g)
	}
	var qc [numModes]uint16
	oldestW := noTxn
	for _, w := range e.queue {
		qc[w.mode]++
		if w.txn < oldestW {
			oldestW = w.txn
		}
	}
	if qc != e.queueCount {
		return fmt.Errorf("queueCount=%v, fold gives %v", e.queueCount, qc)
	}
	if oldestW != e.oldestWaiter {
		return fmt.Errorf("oldestWaiter=%d, fold gives %d", e.oldestWaiter, oldestW)
	}
	if e.spill == nil && len(e.slots) > 1 {
		for i := 1; i < len(e.slots); i++ {
			if e.slots[i-1].txn >= e.slots[i].txn {
				return fmt.Errorf("inline slots out of order at %d", i)
			}
		}
	}
	return nil
}

// ---- free lists -----------------------------------------------------------

// Pool lifecycle discipline (the recycle-race rules):
//
//   - A waiter is recycled ONLY by the goroutine that owns its outcome: the
//     blocked requester after receiving from ready, or after withdraw /
//     resolveDeadlock removed it from the queue under the shard latch. Other
//     actors (granters, the detector) may touch a waiter only under the
//     shard latch after proving it current — by queue membership
//     (removeWaiterPtr) or by pointer-equality with the waits-for record.
//   - The ready channel is reused across lives; putWaiter drains a raced
//     buffered outcome so a recycled waiter never wakes spuriously.
//   - Entries are recycled only when empty (maybeDropEntry), so their
//     summaries are all-zero by construction; getEntry just resets the
//     sentinels.

var waiterPool = sync.Pool{New: func() any { return &waiter{ready: make(chan error, 1)} }}

// waiterGen issues the per-checkout identity stamps (see waiter.gen).
var waiterGen atomic.Uint64

func getWaiter() *waiter {
	w := waiterPool.Get().(*waiter)
	w.gen = waiterGen.Add(1)
	return w
}

func putWaiter(w *waiter) {
	select {
	case <-w.ready: // drop a raced, already-owned outcome
	default:
	}
	w.txn, w.mode, w.convert, w.durable = 0, None, false, false
	w.enq = time.Time{}
	waiterPool.Put(w)
}

var entryPool = sync.Pool{New: func() any { return &entry{} }}

func getEntry() *entry {
	e := entryPool.Get().(*entry)
	e.group = None
	e.oldestHolder, e.oldestWaiter = noTxn, noTxn
	return e
}

// putEntry recycles an empty entry (nHolders == 0, queue empty — counts are
// therefore already zero). The spill map is kept for the entry's next life.
func putEntry(e *entry) {
	e.slots = e.slots[:0]
	e.queue = e.queue[:0]
	entryPool.Put(e)
}

var heldPool = sync.Pool{New: func() any { return new(heldLock) }}

func getHeld() *heldLock { return heldPool.Get().(*heldLock) }

func putHeld(h *heldLock) {
	*h = heldLock{}
	heldPool.Put(h)
}
