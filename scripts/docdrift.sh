#!/bin/sh
# docdrift: documentation drift gate (make drift-check, part of make ci).
#
# The docs cross-reference each other two ways, and both rot silently:
#   1. "DESIGN.md §N" section references, sprinkled through markdown and
#      code comments, must point at a real "## N." heading in DESIGN.md.
#   2. Intra-repo markdown links — [text](RELATIVE/PATH) in *.md — must
#      point at files that exist (anchors and external URLs are out of
#      scope).
# Renumbering a DESIGN.md section or moving a file now fails CI instead of
# leaving dead pointers for the next reader.
set -eu
cd "$(dirname "$0")/.."

fail=0

# --- check 1: DESIGN.md section references ---------------------------------
sections=$(grep -o '^## [0-9][0-9]*\.' DESIGN.md | grep -o '[0-9][0-9]*')
refs=$(grep -rhoI 'DESIGN\.md §[0-9][0-9]*' \
    --include='*.md' --include='*.go' --include='*.sh' . | grep -o '[0-9][0-9]*$' | sort -un)
for n in $refs; do
    if ! echo "$sections" | grep -qx "$n"; then
        echo "docdrift: references to DESIGN.md §$n but DESIGN.md has no '## $n.' heading:"
        grep -rnI "DESIGN\.md §$n" --include='*.md' --include='*.go' --include='*.sh' . | head -5
        fail=1
    fi
done

# --- check 2: intra-repo markdown links ------------------------------------
# SNIPPETS.md is exempt: it quotes exemplar code from other repositories
# verbatim, links and all — those links describe the source repo, not ours.
for md in *.md; do
    [ "$md" = SNIPPETS.md ] && continue
    links=$(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//') || continue
    for target in $links; do
        case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$path" ]; then
            echo "docdrift: $md links to $target but $path does not exist"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "docdrift: DESIGN.md § references resolve; markdown links resolve"
