#!/bin/sh
# doclint: godoc hygiene gate (make doc-lint, part of make ci).
#
# Two checks:
#   1. Every package in the module carries a package doc comment —
#      "// Package <name> ..." for libraries, "// Command <name> ..." for
#      main packages — so `go doc` has something to say about every unit
#      of the codebase.
#   2. Every exported top-level declaration in the public API packages
#      (client, and the wire package third-party implementors read) has a
#      doc comment on the line above it. Internal packages are exempt from
#      the per-symbol rule; the public surface is not.
set -eu
cd "$(dirname "$0")/.."

fail=0

# --- check 1: package docs -------------------------------------------------
for dir in $(go list -f '{{.Dir}}' ./...); do
    rel=${dir#"$(pwd)"/}
    [ "$rel" = "$dir" ] && rel=.
    name=$(go list -f '{{.Name}}' "./$rel")
    want="Package $name"
    if [ "$name" = main ]; then
        want="Command "
    fi
    if ! grep -l "^// $want" "$dir"/*.go >/dev/null 2>&1; then
        echo "doclint: $rel: no package doc comment (want a '// $want...' block)"
        fail=1
    fi
done

# --- check 2: exported symbols in public packages --------------------------
for f in client/*.go internal/wire/*.go; do
    case "$f" in *_test.go) continue ;; esac
    awk -v file="$f" '
        /^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
            if (prev !~ /^\/\//) {
                printf "doclint: %s:%d: exported %s has no doc comment\n", file, NR, $0
                bad = 1
            }
        }
        { prev = $0 }
        END { exit bad }
    ' "$f" || fail=1
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "doclint: every package documented; public API symbols documented"
