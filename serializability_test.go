// Serializability oracles: concurrent transfers must conserve the total
// (no lost updates, no dirty reads), and a consistent snapshot under a
// relation-level S lock must always observe the invariant — even while
// transfers are in flight.
package colock_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/resilience"
	"colock/internal/schema"
	"colock/internal/store"
	"colock/internal/txn"
)

func accountsStore(t *testing.T, n int, initial int64) *store.Store {
	t.Helper()
	cat := schema.NewCatalog("bank")
	if err := cat.AddRelation(&schema.Relation{
		Name: "accounts", Segment: "s1", Key: "acc_id",
		Type: schema.Tuple(
			schema.F("acc_id", schema.Str()),
			schema.F("balance", schema.Int()),
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	st := store.New(cat)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("a%d", i)
		if err := st.Insert("accounts", id, store.NewTuple().
			Set("acc_id", store.Str(id)).Set("balance", store.Int(initial))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func sumBalances(t *testing.T, tx *txn.Txn, st *store.Store, n int) int64 {
	t.Helper()
	var sum int64
	for i := 0; i < n; i++ {
		v, err := tx.ReadAt(store.P("accounts", fmt.Sprintf("a%d", i), "balance"))
		if err != nil {
			t.Fatal(err)
		}
		sum += int64(v.(store.Int))
	}
	return sum
}

// TestTransferConservation: random concurrent transfers between accounts
// with periodic consistent audits. The total must be conserved at every
// audit and at the end.
func TestTransferConservation(t *testing.T) {
	const (
		accounts = 8
		initial  = 100
		workers  = 6
		rounds   = 20
	)
	st := accountsStore(t, accounts, initial)
	nm := core.NewNamer(st.Catalog(), false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, core.Options{})
	mgr := txn.NewManager(proto, st)
	want := int64(accounts * initial)

	var wg sync.WaitGroup
	errs := make(chan error, workers+1)

	// Transfer workers.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 131))
			for r := 0; r < rounds; r++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(rng.Intn(20) + 1)
				err := mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
					// Deterministic lock order avoids most deadlocks; the
					// retry loop soaks up the rest.
					a, b := from, to
					if b < a {
						a, b = b, a
					}
					pa := store.P("accounts", fmt.Sprintf("a%d", a))
					pb := store.P("accounts", fmt.Sprintf("a%d", b))
					if err := tx.LockPath(nil, pa, lock.X); err != nil {
						return err
					}
					if err := tx.LockPath(nil, pb, lock.X); err != nil {
						return err
					}
					move := func(key string, delta int64) error {
						p := store.P("accounts", key, "balance")
						v, err := tx.ReadAt(p)
						if err != nil {
							return err
						}
						return tx.UpdateAtomicAt(p, store.Int(int64(v.(store.Int))+delta))
					}
					if err := move(fmt.Sprintf("a%d", from), -amount); err != nil {
						return err
					}
					return move(fmt.Sprintf("a%d", to), amount)
				}, txn.WithMaxAttempts(100))
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// Auditor: relation-level S lock gives a consistent snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			err := mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
				if err := tx.LockPath(nil, store.P("accounts"), lock.S); err != nil {
					return err
				}
				if got := sumBalances(t, tx, st, accounts); got != want {
					return fmt.Errorf("audit %d: total = %d, want %d", i, got, want)
				}
				return nil
			}, txn.WithMaxAttempts(100))
			if err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := mgr.Begin()
	if err := final.LockPath(nil, store.P("accounts"), lock.S); err != nil {
		t.Fatal(err)
	}
	if got := sumBalances(t, final, st, accounts); got != want {
		t.Errorf("final total = %d, want %d", got, want)
	}
	final.Abort()
	if proto.Manager().LockCount() != 0 {
		t.Error("locks leaked")
	}
}

// TestTransferConservationUnderSavepoints mixes partial rollbacks into the
// transfers: a transfer is applied, rolled back to a savepoint, then
// re-applied — conservation must still hold.
func TestTransferConservationUnderSavepoints(t *testing.T) {
	const accounts = 4
	st := accountsStore(t, accounts, 50)
	nm := core.NewNamer(st.Catalog(), false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, core.Options{})
	mgr := txn.NewManager(proto, st)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				from := w % accounts
				to := (w + r + 1) % accounts
				if from == to {
					continue
				}
				err := mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
					a, b := from, to
					if b < a {
						a, b = b, a
					}
					if err := tx.LockPath(nil, store.P("accounts", fmt.Sprintf("a%d", a)), lock.X); err != nil {
						return err
					}
					if err := tx.LockPath(nil, store.P("accounts", fmt.Sprintf("a%d", b)), lock.X); err != nil {
						return err
					}
					transfer := func() error {
						for _, step := range []struct {
							acc   int
							delta int64
						}{{from, -5}, {to, 5}} {
							p := store.P("accounts", fmt.Sprintf("a%d", step.acc), "balance")
							v, err := tx.ReadAt(p)
							if err != nil {
								return err
							}
							if err := tx.UpdateAtomicAt(p, store.Int(int64(v.(store.Int))+step.delta)); err != nil {
								return err
							}
						}
						return nil
					}
					sp := tx.Savepoint()
					if err := transfer(); err != nil {
						return err
					}
					if err := tx.RollbackTo(sp); err != nil {
						return err
					}
					return transfer() // the one that counts
				}, txn.WithMaxAttempts(100))
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := mgr.Begin()
	if err := final.LockPath(nil, store.P("accounts"), lock.S); err != nil {
		t.Fatal(err)
	}
	if got := sumBalances(t, final, st, accounts); got != int64(accounts*50) {
		t.Errorf("total = %d, want %d", got, accounts*50)
	}
	final.Abort()
}

// TestTransferConservationUnderChaos replays the transfer workload with a
// fixed-seed fault injector killing attempts mid-flight: histories now
// contain chaos-aborted prefixes that were retried. Conservation must hold
// at every audit and at the end — a retried attempt's partial work must
// never leak into the committed history — and with unbounded attempts every
// transfer must eventually commit despite the injected victims, timeouts
// and grant delays.
func TestTransferConservationUnderChaos(t *testing.T) {
	const (
		accounts = 6
		initial  = 100
		workers  = 6
		rounds   = 12
	)
	st := accountsStore(t, accounts, initial)
	nm := core.NewNamer(st.Catalog(), false)
	lm := lock.NewManager(lock.Options{Policy: lock.PolicyWaitDie})
	chaos := resilience.NewChaos(resilience.ChaosConfig{
		Seed:        11,
		VictimRate:  0.10,
		TimeoutRate: 0.05,
		DelayRate:   0.05,
		Delay:       100 * time.Microsecond,
	})
	lm.SetInjector(chaos)
	proto := core.NewProtocol(lm, st, nm, core.Options{})
	mgr := txn.NewManager(proto, st)
	want := int64(accounts * initial)

	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	retryOpts := []txn.Option{
		txn.WithMaxAttempts(0),
		txn.WithBackoff(resilience.CappedExponential{
			Base: 20 * time.Microsecond, Cap: time.Millisecond,
		}),
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*977 + 1))
			for r := 0; r < rounds; r++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(rng.Intn(20) + 1)
				err := mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
					a, b := from, to
					if b < a {
						a, b = b, a
					}
					if err := tx.LockPath(nil, store.P("accounts", fmt.Sprintf("a%d", a)), lock.X); err != nil {
						return err
					}
					if err := tx.LockPath(nil, store.P("accounts", fmt.Sprintf("a%d", b)), lock.X); err != nil {
						return err
					}
					move := func(key string, delta int64) error {
						p := store.P("accounts", key, "balance")
						v, err := tx.ReadAt(p)
						if err != nil {
							return err
						}
						return tx.UpdateAtomicAt(p, store.Int(int64(v.(store.Int))+delta))
					}
					if err := move(fmt.Sprintf("a%d", from), -amount); err != nil {
						return err
					}
					return move(fmt.Sprintf("a%d", to), amount)
				}, retryOpts...)
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// Auditor riding through the same chaos.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			err := mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
				if err := tx.LockPath(nil, store.P("accounts"), lock.S); err != nil {
					return err
				}
				if got := sumBalances(t, tx, st, accounts); got != want {
					return fmt.Errorf("chaos audit %d: total = %d, want %d", i, got, want)
				}
				return nil
			}, retryOpts...)
			if err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if cs := chaos.Stats(); cs.Victims+cs.Timeouts == 0 {
		t.Error("chaos injected no faults — the retried histories tested nothing")
	}
	final := mgr.Begin()
	if err := final.LockPath(nil, store.P("accounts"), lock.S); err != nil {
		t.Fatal(err)
	}
	if got := sumBalances(t, final, st, accounts); got != want {
		t.Errorf("final total = %d, want %d", got, want)
	}
	final.Abort()
	if proto.Manager().LockCount() != 0 {
		t.Error("locks leaked")
	}
}
