// Full-stack integration tests: parser → analyzer → planner → protocol →
// lock manager → store → transactions, exercised concurrently, plus the
// workstation–server environment with crash recovery under load.
package colock_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/query"
	"colock/internal/sim"
	"colock/internal/store"
	"colock/internal/txn"
	"colock/internal/workload"
)

func fullStack(t *testing.T, st *store.Store, rule4Prime bool) (*txn.Manager, *query.Executor, *authz.Table) {
	t.Helper()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	var opts core.Options
	if rule4Prime {
		opts = core.Options{Rule4Prime: true, Authorizer: auth}
	}
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, opts)
	mgr := txn.NewManager(proto, st)
	return mgr, query.NewExecutor(mgr, core.PlannerOptions{}), auth
}

// TestConcurrentQueryWorkload runs many reader and updater transactions
// through the executor simultaneously and verifies no lost updates, no
// leaked locks, and referential integrity.
func TestConcurrentQueryWorkload(t *testing.T) {
	st := workload.Generate(workload.Config{
		Seed: 77, Cells: 6, CObjectsPerCell: 6, RobotsPerCell: 3,
		EffectorsPerRobot: 2, Effectors: 5,
	})
	mgr, exec, auth := fullStack(t, st, true)

	const workers = 6
	const iterations = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	var updates sync.Map // robot path → count of successful updates

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				cell := fmt.Sprintf("c%d", (w+i)%6)
				robot := fmt.Sprintf("r%d", i%3)
				err := mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
					auth.Grant(tx.ID(), "cells")
					if w%2 == 0 {
						// Reader: all c_objects of the cell (Q1 shape).
						src := fmt.Sprintf(`SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = '%s' FOR READ`, cell)
						res, _, err := exec.Run(tx, src)
						if err != nil {
							return err
						}
						if len(res) != 6 {
							return fmt.Errorf("reader saw %d c_objects, want 6", len(res))
						}
						return nil
					}
					// Updater: one robot (Q2 shape) + write its trajectory.
					src := fmt.Sprintf(`SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = '%s' AND r.robot_id = '%s' FOR UPDATE`, cell, robot)
					res, _, err := exec.Run(tx, src)
					if err != nil {
						return err
					}
					if len(res) != 1 {
						return fmt.Errorf("updater matched %d robots", len(res))
					}
					p := res[0].Path.Child("trajectory")
					if err := tx.UpdateAtomicAt(p, store.Str(fmt.Sprintf("w%d-i%d", w, i))); err != nil {
						return err
					}
					key := res[0].Path.String()
					v, _ := updates.LoadOrStore(key, new(int))
					// Count under the X lock: exclusive per robot.
					*(v.(*int))++
					return nil
				}, txn.WithMaxAttempts(50))
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := mgr.Protocol().Manager().LockCount(); n != 0 {
		t.Errorf("locks leaked: %d", n)
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if mgr.ActiveCount() != 0 {
		t.Errorf("active transactions leaked: %d", mgr.ActiveCount())
	}
}

// TestPhantomPreventionViaCoarseGranule: a full-collection scan locks the
// collection HoLU (the planner's anticipated escalation), which blocks a
// concurrent insert into that collection (IX on the collection conflicts
// with the scanner's S) — preventing the classic phantom for planned scans.
// The paper defers the general phantom problem to future work (§5); coarse
// granules already cover this common case.
func TestPhantomPreventionViaCoarseGranule(t *testing.T) {
	st := store.PaperDatabase()
	mgr, exec, _ := fullStack(t, st, false)

	scanner := mgr.Begin()
	res, plan, err := exec.Run(scanner, `SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Spec.LevelName(plan.Level); got != "collection c_objects" {
		t.Fatalf("plan level = %s (scan must lock the collection)", got)
	}
	firstCount := len(res)

	inserter := mgr.Begin()
	done := make(chan error, 1)
	go func() {
		done <- inserter.AddElem(store.P("cells", "c1", "c_objects"), "o99",
			store.NewTuple().Set("obj_id", store.Int(99)).Set("obj_name", store.Str("phantom")))
	}()
	select {
	case err := <-done:
		t.Fatalf("phantom insert not blocked: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	// Repeatable read: the scanner sees the same count again.
	res2, _, err := exec.Run(scanner, `SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != firstCount {
		t.Errorf("phantom appeared: %d then %d", firstCount, len(res2))
	}
	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := inserter.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryUnderLoad: workstations check out objects, the server
// crashes mid-session, and after restart every invariant holds: durable
// locks still protect the check-outs, check-ins apply, nothing leaks.
func TestCrashRecoveryUnderLoad(t *testing.T) {
	st := workload.Generate(workload.Config{
		Seed: 99, Cells: 4, CObjectsPerCell: 3, RobotsPerCell: 2,
		EffectorsPerRobot: 1, Effectors: 3,
	})
	server := sim.NewServer(st)

	stations := make([]*sim.Workstation, 3)
	for i := range stations {
		stations[i] = server.NewWorkstation(fmt.Sprintf("ws%d", i))
		if err := stations[i].CheckOut("cells", fmt.Sprintf("c%d", i), true); err != nil {
			t.Fatal(err)
		}
		local := stations[i].Local("cells", fmt.Sprintf("c%d", i))
		local.Get("robots").(*store.List).Get("r0").(*store.Tuple).
			Set("trajectory", store.Str(fmt.Sprintf("edited-by-ws%d", i)))
	}

	if err := server.CrashAndRestart(); err != nil {
		t.Fatal(err)
	}

	// A short transaction can still work on the unaffected cell c3.
	short := server.Txns().Begin()
	if err := short.UpdateAtomic(store.P("cells", "c3", "robots", "r0", "trajectory"),
		store.Str("short-txn")); err != nil {
		t.Fatal(err)
	}
	if err := short.Commit(); err != nil {
		t.Fatal(err)
	}

	// But c0 is still protected by ws0's restored long lock.
	blocked := server.Txns().Begin()
	done := make(chan error, 1)
	go func() {
		done <- blocked.LockPath(nil, store.P("cells", "c0", "robots", "r0"), lock.X)
	}()
	select {
	case err := <-done:
		t.Fatalf("long lock lost in crash: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	// All stations check in; edits land; the blocked transaction proceeds.
	for i, ws := range stations {
		if err := ws.CheckIn("cells", fmt.Sprintf("c%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	blocked.Abort()

	for i := range stations {
		v, err := st.Lookup(store.P("cells", fmt.Sprintf("c%d", i), "robots", "r0", "trajectory"))
		if err != nil {
			t.Fatal(err)
		}
		if v != store.Str(fmt.Sprintf("edited-by-ws%d", i)) {
			t.Errorf("ws%d edit lost: %v", i, v)
		}
	}
	if n := server.LockManager().LockCount(); n != 0 {
		t.Errorf("locks leaked: %d", n)
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestDeEscalationEndToEnd: a transaction scans a whole cell (coarse X),
// decides it only needs one robot, de-escalates, and a second transaction
// immediately proceeds on the released part while the kept robot stays
// protected.
func TestDeEscalationEndToEnd(t *testing.T) {
	st := store.PaperDatabase()
	mgr, _, _ := fullStack(t, st, false)

	editor := mgr.Begin()
	if err := editor.LockPath(nil, store.P("cells", "c1"), lock.X); err != nil {
		t.Fatal(err)
	}
	if err := editor.DeEscalate(core.DataNode(store.P("cells", "c1")),
		[]store.Path{store.P("cells", "c1", "robots", "r1")}); err != nil {
		t.Fatal(err)
	}
	if err := editor.UpdateAtomicAt(store.P("cells", "c1", "robots", "r1", "trajectory"),
		store.Str("kept")); err != nil {
		t.Fatal(err)
	}

	other := mgr.Begin()
	if err := other.UpdateAtomic(store.P("cells", "c1", "c_objects", "o1", "obj_name"),
		store.Str("released-part")); err != nil {
		t.Fatal(err)
	}
	if err := other.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := editor.Commit(); err != nil {
		t.Fatal(err)
	}
	v1, _ := st.Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	v2, _ := st.Lookup(store.P("cells", "c1", "c_objects", "o1", "obj_name"))
	if v1 != store.Str("kept") || v2 != store.Str("released-part") {
		t.Errorf("values: %v, %v", v1, v2)
	}
}

// TestEarlyUnlockEndToEnd: rule 5's leaf-to-root early release through the
// transaction API.
func TestEarlyUnlockEndToEnd(t *testing.T) {
	st := store.PaperDatabase()
	mgr, _, _ := fullStack(t, st, false)

	tx := mgr.Begin()
	leaf := store.P("effectors", "e1")
	if err := tx.LockPath(nil, leaf, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := tx.Unlock(core.DataNode(leaf)); err != nil {
		t.Fatal(err)
	}
	// Another transaction can use e1 before tx commits.
	other := mgr.Begin()
	if err := other.LockPath(nil, leaf, lock.X); err != nil {
		t.Fatal(err)
	}
	other.Abort()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockResolutionEndToEnd: crossing updaters through the executor
// resolve via victim abort and retry.
func TestDeadlockResolutionEndToEnd(t *testing.T) {
	st := store.PaperDatabase()
	mgr, _, _ := fullStack(t, st, false)
	paths := []store.Path{store.P("effectors", "e1"), store.P("effectors", "e3")}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
				if err := tx.LockPath(nil, paths[i], lock.X); err != nil {
					return err
				}
				time.Sleep(5 * time.Millisecond)
				return tx.LockPath(nil, paths[1-i], lock.X)
			}, txn.WithMaxAttempts(30))
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, lock.ErrDeadlock) {
			t.Fatal(err)
		}
		if err != nil {
			t.Fatalf("retry did not resolve deadlock: %v", err)
		}
	}
}
