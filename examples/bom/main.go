// Command bom demonstrates recursive complex objects — the paper's §5 extension implemented.
// A bill-of-material relation references itself (assemblies contain
// subassemblies contain standard parts); the protocol's downward propagation
// walks the transitive closure, terminates on cycles, and keeps readers of
// sibling assemblies concurrent.
package main

import (
	"fmt"
	"log"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/schema"
	"colock/internal/store"
	"colock/internal/txn"
)

func main() {
	log.SetFlags(0)

	cat := schema.NewCatalog("bomdb")
	cat.SetRecursive(true) // opt in to recursive complex objects
	check(cat.AddRelation(&schema.Relation{
		Name: "parts", Segment: "s1", Key: "part_id",
		Type: schema.Tuple(
			schema.F("part_id", schema.Str()),
			schema.F("name", schema.Str()),
			schema.F("subparts", schema.Set(schema.Ref("parts"))),
		),
	}))
	check(cat.Validate())

	st := store.New(cat)
	part := func(id, name string, subs ...string) {
		set := store.NewSet()
		for _, s := range subs {
			set.Add(s, store.Ref{Relation: "parts", Key: s})
		}
		check(st.Insert("parts", id, store.NewTuple().
			Set("part_id", store.Str(id)).
			Set("name", store.Str(name)).
			Set("subparts", set)))
	}
	// gearbox ─→ shaft ─→ bearing ─→ bolt
	//        └─→ gear  ─→ bolt          (bolt is shared)
	part("bolt", "M8 bolt")
	part("bearing", "ball bearing", "bolt")
	part("shaft", "drive shaft", "bearing")
	part("gear", "spur gear", "bolt")
	part("gearbox", "gearbox assembly", "shaft", "gear")
	// A maintenance kit that contains the gearbox AND is listed as the
	// gearbox's spare — a reference cycle.
	part("kit", "maintenance kit", "gearbox")
	check(st.AddElem(store.P("parts", "gearbox", "subparts"), "kit",
		store.Ref{Relation: "parts", Key: "kit"}))
	check(st.CheckIntegrity())

	nm := core.NewNamer(cat, false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, core.Options{})
	mgr := txn.NewManager(proto, st)

	// The object-specific lock graph shows the self-referencing dashed edge.
	g, err := core.DeriveGraph(cat, "parts")
	check(err)
	fmt.Println("Object-specific lock graph of the recursive relation:")
	fmt.Print(g.Render())

	// The unit analysis walks the closure (cycle included) exactly once.
	u, err := core.ComputeUnits(st, nm, store.P("parts", "gearbox"))
	check(err)
	fmt.Printf("\nunits of \"gearbox\": %d inner units (transitive closure, cycle-safe):\n", len(u.Inner))
	for _, iu := range u.Inner {
		fmt.Printf("  depth %d: %s\n", iu.Depth, iu.EntryPoint)
	}

	// X-locking the gearbox locks its whole closure — including the cycle
	// back through "kit" — and terminates.
	editor := mgr.Begin()
	check(editor.LockPath(nil, store.P("parts", "gearbox"), lock.X))
	fmt.Println("\neditor X-locked the gearbox; closure locks:")
	for _, h := range proto.Manager().HeldLocks(editor.ID()) {
		fmt.Printf("  %-4s %s\n", h.Mode, h.Resource)
	}
	check(editor.UpdateAtomicAt(store.P("parts", "bearing", "name"), store.Str("ceramic bearing")))
	check(editor.Commit())

	v, _ := st.Lookup(store.P("parts", "bearing", "name"))
	fmt.Println("\ncommitted: bearing renamed to", v)

	// Two readers of sibling assemblies sharing the bolt run concurrently.
	r1 := mgr.Begin()
	r2 := mgr.Begin()
	check(r1.LockPath(nil, store.P("parts", "shaft"), lock.S))
	check(r2.LockPath(nil, store.P("parts", "gear"), lock.S))
	fmt.Printf("\nshaft reader ∥ gear reader on the shared bolt: waits = %d\n",
		proto.Manager().Stats().Waits)
	check(r1.Commit())
	check(r2.Commit())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
