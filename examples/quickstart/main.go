// Command quickstart shows how to define an extended-NF² schema with shared common data, store
// complex objects, and run queries under the complex-object lock protocol.
package main

import (
	"fmt"
	"log"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/query"
	"colock/internal/schema"
	"colock/internal/store"
	"colock/internal/txn"
)

func main() {
	log.SetFlags(0)

	// 1. Schema: documents reference a shared library of figures.
	cat := schema.NewCatalog("docdb")
	check(cat.AddRelation(&schema.Relation{
		Name: "figures", Segment: "lib", Key: "fig_id",
		Type: schema.Tuple(
			schema.F("fig_id", schema.Str()),
			schema.F("caption", schema.Str()),
		),
	}))
	check(cat.AddRelation(&schema.Relation{
		Name: "documents", Segment: "docs", Key: "doc_id",
		Type: schema.Tuple(
			schema.F("doc_id", schema.Str()),
			schema.F("title", schema.Str()),
			schema.F("sections", schema.List(schema.Tuple(
				schema.F("sec_id", schema.Str()),
				schema.F("body", schema.Str()),
				schema.F("figures", schema.Set(schema.Ref("figures"))),
			))),
		),
	}))
	check(cat.Validate())

	// 2. Data: two documents sharing figure f1.
	st := store.New(cat)
	check(st.Insert("figures", "f1", store.NewTuple().
		Set("fig_id", store.Str("f1")).Set("caption", store.Str("Architecture"))))
	doc := func(id, title, sec string, figs ...string) *store.Tuple {
		set := store.NewSet()
		for _, f := range figs {
			set.Add(f, store.Ref{Relation: "figures", Key: f})
		}
		return store.NewTuple().
			Set("doc_id", store.Str(id)).
			Set("title", store.Str(title)).
			Set("sections", store.NewList().Append(sec, store.NewTuple().
				Set("sec_id", store.Str(sec)).
				Set("body", store.Str("...")).
				Set("figures", set)))
	}
	check(st.Insert("documents", "d1", doc("d1", "Design", "s1", "f1")))
	check(st.Insert("documents", "d2", doc("d2", "Manual", "s1", "f1")))
	core.CollectStatistics(st)

	// 3. The lock protocol with authorization cooperation (rule 4').
	auth := authz.NewTable(false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st,
		core.NewNamer(cat, false), core.Options{Rule4Prime: true, Authorizer: auth})
	mgr := txn.NewManager(proto, st)
	exec := query.NewExecutor(mgr, core.PlannerOptions{})

	// 4. The derived object-specific lock graph (§4.3).
	g, err := core.DeriveGraph(cat, "documents")
	check(err)
	fmt.Println("Object-specific lock graph of \"documents\":")
	fmt.Print(g.Render())

	// 5. Two editors update different documents that SHARE figure f1 —
	// they run concurrently because neither may modify the library.
	t1 := mgr.Begin()
	t2 := mgr.Begin()
	auth.Grant(t1.ID(), "documents")
	auth.Grant(t2.ID(), "documents")

	res, plan, err := exec.Run(t1,
		`SELECT s FROM d IN documents, s IN d.sections WHERE d.doc_id = 'd1' AND s.sec_id = 's1' FOR UPDATE`)
	check(err)
	fmt.Printf("\neditor 1: %s → %d result(s)\n", plan, len(res))

	res, _, err = exec.Run(t2,
		`SELECT s FROM d IN documents, s IN d.sections WHERE d.doc_id = 'd2' AND s.sec_id = 's1' FOR UPDATE`)
	check(err)
	fmt.Printf("editor 2: concurrent update of d2 granted → %d result(s)\n", len(res))

	// 6. Covered writes through the transactions, then commit.
	check(t1.UpdateAtomicAt(store.P("documents", "d1", "sections", "s1", "body"), store.Str("v2")))
	check(t2.UpdateAtomicAt(store.P("documents", "d2", "sections", "s1", "body"), store.Str("v2")))
	check(t1.Commit())
	check(t2.Commit())

	fmt.Printf("\nwaits: %d (both editors proceeded in parallel)\n", proto.Manager().Stats().Waits)
	v, err := st.Lookup(store.P("documents", "d1", "sections", "s1", "body"))
	check(err)
	fmt.Println("d1/s1/body =", v)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
