// Command partlibrary demonstrates nested common data ("common data may again contain common
// data", §2). Assemblies reference shared parts, parts reference shared
// standard bolts. The example shows transitive downward propagation, the
// unit decomposition at depth 2, and the NOFOLLOW optimization for a delete
// that never touches the referenced library.
package main

import (
	"fmt"
	"log"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/schema"
	"colock/internal/store"
	"colock/internal/txn"
)

func main() {
	log.SetFlags(0)

	cat := schema.NewCatalog("plm")
	check(cat.AddRelation(&schema.Relation{
		Name: "bolts", Segment: "std", Key: "bolt_id",
		Type: schema.Tuple(
			schema.F("bolt_id", schema.Str()),
			schema.F("norm", schema.Str()),
		),
	}))
	check(cat.AddRelation(&schema.Relation{
		Name: "parts", Segment: "lib", Key: "part_id",
		Type: schema.Tuple(
			schema.F("part_id", schema.Str()),
			schema.F("material", schema.Str()),
			schema.F("bolts", schema.Set(schema.Ref("bolts"))),
		),
	}))
	check(cat.AddRelation(&schema.Relation{
		Name: "assemblies", Segment: "work", Key: "asm_id",
		Type: schema.Tuple(
			schema.F("asm_id", schema.Str()),
			schema.F("name", schema.Str()),
			schema.F("components", schema.Set(schema.Ref("parts"))),
		),
	}))
	check(cat.Validate())

	st := store.New(cat)
	check(st.Insert("bolts", "m8", store.NewTuple().
		Set("bolt_id", store.Str("m8")).Set("norm", store.Str("DIN 933"))))
	check(st.Insert("parts", "gear", store.NewTuple().
		Set("part_id", store.Str("gear")).Set("material", store.Str("steel")).
		Set("bolts", store.NewSet().Add("m8", store.Ref{Relation: "bolts", Key: "m8"}))))
	check(st.Insert("parts", "axle", store.NewTuple().
		Set("part_id", store.Str("axle")).Set("material", store.Str("steel")).
		Set("bolts", store.NewSet().Add("m8", store.Ref{Relation: "bolts", Key: "m8"}))))
	check(st.Insert("assemblies", "gbx", store.NewTuple().
		Set("asm_id", store.Str("gbx")).Set("name", store.Str("gearbox")).
		Set("components", store.NewSet().
			Add("gear", store.Ref{Relation: "parts", Key: "gear"}).
			Add("axle", store.Ref{Relation: "parts", Key: "axle"}))))

	nm := core.NewNamer(cat, false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, core.Options{})
	mgr := txn.NewManager(proto, st)

	// Unit decomposition of the assembly: depth-1 units (parts) and the
	// depth-2 unit (the shared bolt).
	u, err := core.ComputeUnits(st, nm, store.P("assemblies", "gbx"))
	check(err)
	fmt.Printf("assembly \"gbx\": outer unit %d nodes, %d inner units:\n", len(u.OuterNodes), len(u.Inner))
	for _, iu := range u.Inner {
		fmt.Printf("  depth %d: %s (referenced %d time(s))\n", iu.Depth, iu.EntryPoint, len(iu.ReferencedFrom))
	}

	// S on the assembly transitively S-locks gear, axle AND the m8 bolt.
	reader := mgr.Begin()
	check(reader.LockPath(nil, store.P("assemblies", "gbx"), lock.S))
	fmt.Println("\nreader S-locked the assembly; propagated locks:")
	for _, h := range proto.Manager().HeldLocks(reader.ID()) {
		fmt.Printf("  %-4s %s\n", h.Mode, h.Resource)
	}

	// A bolt-library maintainer is blocked by the reader's propagated S —
	// shown without blocking via the effective-mode oracle.
	em, err := proto.EffectiveMode(reader.ID(), core.DataNode(store.P("bolts", "m8", "norm")))
	check(err)
	fmt.Printf("\nreader's effective lock on bolts/m8/norm: %v (implicit via the entry point)\n", em)
	check(reader.Commit())

	// NOFOLLOW: removing a component reference from the assembly is an
	// update of the assembly only — no locks on parts or bolts needed
	// (§4.5: "no locks on common data are necessary at all").
	deleter := mgr.Begin()
	check(deleter.LockPath(nil, store.P("assemblies", "gbx", "components"), lock.X, txn.WithNoFollow()))
	check(deleter.RemoveElemAt(store.P("assemblies", "gbx", "components"), "axle"))
	fmt.Println("\nNOFOLLOW delete of component 'axle'; locks held:")
	for _, h := range proto.Manager().HeldLocks(deleter.ID()) {
		fmt.Printf("  %-4s %s\n", h.Mode, h.Resource)
	}
	check(deleter.Commit())

	comps, err := st.Lookup(store.P("assemblies", "gbx", "components"))
	check(err)
	fmt.Println("\nassembly components now:", comps)
	check(st.CheckIntegrity())
	fmt.Println("referential integrity holds (axle still exists in the parts library).")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
