// Command manufacturing reproduces the paper's running example (Figures 1, 6, 7). A
// manufacturing cell's robots share a library of effectors; query Q1 checks
// out c_objects for read, Q2 and Q3 update different robots that share
// effector e2 — all three run concurrently under the protocol with rule 4′.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/query"
	"colock/internal/store"
	"colock/internal/txn"
)

const (
	q1 = `SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ`
	q2 = `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`
	q3 = `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE`
)

func main() {
	log.SetFlags(0)
	st := store.PaperDatabase()
	core.CollectStatistics(st)

	auth := authz.NewTable(false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st,
		core.NewNamer(st.Catalog(), false),
		core.Options{Rule4Prime: true, Authorizer: auth})
	mgr := txn.NewManager(proto, st)
	exec := query.NewExecutor(mgr, core.PlannerOptions{})

	fmt.Println("Database (Figure 6):")
	for _, key := range st.Keys("cells") {
		fmt.Printf("  cell %s = %s\n", key, st.Get("cells", key))
	}

	// Run Q1, Q2, Q3 concurrently: three users of the manufacturing cell.
	var wg sync.WaitGroup
	results := make([]string, 3)
	for i, src := range []string{q1, q2, q3} {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			tx := mgr.Begin()
			auth.Grant(tx.ID(), "cells") // may modify cells, never effectors
			res, plan, err := exec.Run(tx, src)
			if err != nil {
				log.Fatalf("Q%d: %v", i+1, err)
			}
			// Simulate transaction work while holding the locks.
			time.Sleep(20 * time.Millisecond)
			if i > 0 { // Q2/Q3 update their robot's trajectory
				p := res[0].Path.Child("trajectory")
				if err := tx.UpdateAtomicAt(p, store.Str(fmt.Sprintf("tr-new-%d", i))); err != nil {
					log.Fatalf("Q%d update: %v", i+1, err)
				}
			}
			if err := tx.Commit(); err != nil {
				log.Fatalf("Q%d commit: %v", i+1, err)
			}
			results[i] = fmt.Sprintf("Q%d: %d result(s), %v", i+1, len(res), plan)
		}(i, src)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	stats := proto.Manager().Stats()
	fmt.Printf("\nlock waits: %d — Q1, Q2 and Q3 ran concurrently although Q2 and Q3\n", stats.Waits)
	fmt.Println("both touch the shared effector e2 (Figure 7, rule 4').")

	v1, _ := st.Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	v2, _ := st.Lookup(store.P("cells", "c1", "robots", "r2", "trajectory"))
	fmt.Printf("updated trajectories: r1=%s r2=%s\n", v1, v2)

	// A library maintainer, by contrast, needs X on an effector — and is
	// properly synchronized against robot users "from the side".
	maint := mgr.Begin()
	auth.Grant(maint.ID(), "effectors")
	if err := maint.LockPath(nil, store.P("effectors", "e2"), lock.X); err != nil {
		log.Fatal(err)
	}
	if err := maint.UpdateAtomicAt(store.P("effectors", "e2", "tool"), store.Str("t2-rev2")); err != nil {
		log.Fatal(err)
	}
	if err := maint.Commit(); err != nil {
		log.Fatal(err)
	}
	v, _ := st.Lookup(store.P("effectors", "e2", "tool"))
	fmt.Println("library maintenance committed: e2.tool =", v)
}
