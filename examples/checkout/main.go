// Command checkout demonstrates the workstation–server environment of the paper's introduction.
// Two engineers check complex objects out of the central database onto
// their workstations under long locks, edit private copies, survive a
// server crash (long locks are durable), and check their changes back in.
package main

import (
	"fmt"
	"log"
	"time"

	"colock/internal/sim"
	"colock/internal/store"
)

func main() {
	log.SetFlags(0)

	server := sim.NewServer(store.PaperDatabase())
	alice := server.NewWorkstation("alice")
	bob := server.NewWorkstation("bob")

	// Alice checks out cell c1 for update — a long transaction that may
	// last days. The effectors library her robots reference is only
	// S-locked (rule 4'), so others can keep reading it.
	check(alice.CheckOut("cells", "c1", true))
	fmt.Println("alice checked out cells/c1 for update:", alice.CheckedOut())

	// Bob reads the shared effector e2 concurrently — no conflict.
	check(bob.CheckOut("effectors", "e2", false))
	fmt.Println("bob checked out effectors/e2 for read (concurrent with alice)")

	// Alice edits her private copy; the central database is untouched.
	local := alice.Local("cells", "c1")
	robots := local.Get("robots").(*store.List)
	robots.Get("r1").(*store.Tuple).Set("trajectory", store.Str("optimized-path"))
	fmt.Println("alice edited her private copy of robot r1")

	// The server crashes. Long locks survive; short state does not.
	fmt.Println("\n*** server crash ***")
	check(server.CrashAndRestart())
	fmt.Println("server restarted; durable locks restored:")
	for _, dl := range server.LockManager().Snapshot() {
		fmt.Printf("  txn %d holds %-3v on %s\n", dl.Txn, dl.Mode, dl.Resource)
	}

	// Alice's check-out still excludes a rival updater after the crash.
	rival := server.NewWorkstation("rival")
	done := make(chan error, 1)
	go func() { done <- rival.CheckOut("cells", "c1", true) }()
	select {
	case err := <-done:
		log.Fatalf("rival check-out was not blocked: %v", err)
	case <-time.After(50 * time.Millisecond):
		fmt.Println("\nrival's conflicting check-out of cells/c1 is blocked (correct)")
	}

	// Alice checks in: her edit reaches the central database and the rival
	// gets the object.
	check(alice.CheckIn("cells", "c1"))
	fmt.Println("alice checked in")
	check(<-done)
	fmt.Println("rival's check-out granted after alice's check-in")
	check(rival.Cancel("cells", "c1"))
	check(bob.CheckIn("effectors", "e2"))

	v, err := server.Store().Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	check(err)
	fmt.Println("\ncentral database now has r1.trajectory =", v)
	if n := server.LockManager().LockCount(); n != 0 {
		log.Fatalf("locks leaked: %d", n)
	}
	fmt.Println("all locks released; central database consistent:",
		server.Store().CheckIntegrity() == nil)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
