package client_test

// End-to-end tests over a real TCP socket: a colockd-equivalent server in
// this process, clients dialing loopback. They prove the acceptance claim
// of DESIGN.md §16 — a remote client observes the same lock semantics as
// an in-process caller: identical causes for deadlock / wait-die / timeout
// / shed, blocker sets intact, lease expiry freeing every lock, drain
// refusing new work while in-flight transactions finish.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"colock/client"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/resilience"
	"colock/internal/server"
	"colock/internal/store"
	"colock/internal/txn"
	"colock/internal/wire"
)

// startServer brings up a wire server on a loopback port and returns it
// with its lock manager (for lock-table assertions).
func startServer(t *testing.T, policy lock.Policy, opts server.Options) (*server.Server, *lock.Manager) {
	t.Helper()
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{Policy: policy})
	proto := core.NewProtocol(mgr, st, nm, core.Options{})
	srv := server.New(txn.NewManager(proto, st), opts)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, mgr
}

func dial(t *testing.T, srv *server.Server, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestConflictAcrossSessions: two clients contend for X on the same data
// node; the second blocks until the first commits, exactly like two local
// transactions on one hierarchy.
func TestConflictAcrossSessions(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{})
	a := dial(t, srv, client.Options{})
	b := dial(t, srv, client.Options{})
	ctx := context.Background()

	node := core.DataNode(store.P("cells", "c1"))
	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, node, lock.X); err != nil {
		t.Fatal(err)
	}

	tb, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- tb.Lock(ctx, node, lock.X) }()

	// b must be parked behind a's lock, not granted and not failed.
	waitFor(t, 2*time.Second, func() bool { return mgr.WaitingTxns() == 1 }, "b to queue behind a")
	select {
	case err := <-got:
		t.Fatalf("b acquired while a held X: %v", err)
	default:
	}

	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("b after a's commit: %v", err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return mgr.LockCount() == 0 }, "lock table to drain")
}

// TestDeadlockVictimOverWire: a classic ABBA deadlock between two remote
// sessions. The victim's error must carry the exact sentinel and the
// blocker's transaction id across the wire.
func TestDeadlockVictimOverWire(t *testing.T) {
	srv, _ := startServer(t, lock.PolicyDetect, server.Options{})
	a := dial(t, srv, client.Options{})
	b := dial(t, srv, client.Options{})
	ctx := context.Background()

	n1 := core.DataNode(store.P("cells", "c1"))
	n2 := core.DataNode(store.P("cells", "c2"))

	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, n1, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := tb.Lock(ctx, n2, lock.X); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	go func() { errs <- ta.Lock(ctx, n2, lock.X) }()
	go func() { errs <- tb.Lock(ctx, n1, lock.X) }()

	var victim error
	select {
	case victim = <-errs:
	case <-time.After(10 * time.Second):
		t.Fatal("no deadlock victim surfaced")
	}
	if !errors.Is(victim, lock.ErrDeadlockVictim) {
		t.Fatalf("victim error = %v, want ErrDeadlockVictim", victim)
	}
	blockers := resilience.Blockers(victim)
	if len(blockers) == 0 {
		t.Fatal("victim error lost its blockers crossing the wire")
	}
	want := map[lock.TxnID]bool{ta.ID(): true, tb.ID(): true}
	for _, bl := range blockers {
		if !want[bl] {
			t.Errorf("blocker %d is neither transaction (%d, %d)", bl, ta.ID(), tb.ID())
		}
	}
	cause, retry := resilience.Classify(victim)
	if cause != resilience.CauseDeadlock || !retry {
		t.Errorf("classify = (%v,%v), want (deadlock,true)", cause, retry)
	}

	// Abort the victim first: the survivor's acquire is still parked on its
	// transaction until the victim's locks are released.
	var le *lock.LockError
	if !errors.As(victim, &le) {
		t.Fatalf("victim error is not a *lock.LockError: %v", victim)
	}
	vic, sur := ta, tb
	if le.Txn == tb.ID() {
		vic, sur = tb, ta
	}
	vic.Abort()
	if err := <-errs; err != nil {
		t.Errorf("survivor's acquire after victim abort: %v", err)
	}
	sur.Abort()
}

// TestWaitDieOverWire: under the wait-die policy a younger remote
// transaction requesting a lock held by an older one dies with ErrWaitDie.
func TestWaitDieOverWire(t *testing.T) {
	srv, _ := startServer(t, lock.PolicyWaitDie, server.Options{})
	a := dial(t, srv, client.Options{})
	b := dial(t, srv, client.Options{})
	ctx := context.Background()

	node := core.DataNode(store.P("cells", "c1"))
	older, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	younger, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if older.ID() >= younger.ID() {
		t.Fatalf("ids not ordered: %d, %d", older.ID(), younger.ID())
	}
	if err := older.Lock(ctx, node, lock.X); err != nil {
		t.Fatal(err)
	}
	err = younger.Lock(ctx, node, lock.X)
	if !errors.Is(err, lock.ErrWaitDie) {
		t.Fatalf("younger's error = %v, want ErrWaitDie", err)
	}
	if cause, retry := resilience.Classify(err); cause != resilience.CauseWaitDie || !retry {
		t.Errorf("classify = (%v,%v)", cause, retry)
	}
	older.Abort()
	younger.Abort()
}

// TestTimeoutOverWire: WithTimeout travels in the request and the server
// withdraws the acquisition, failing with the timeout sentinel.
func TestTimeoutOverWire(t *testing.T) {
	srv, _ := startServer(t, lock.PolicyDetect, server.Options{})
	a := dial(t, srv, client.Options{})
	b := dial(t, srv, client.Options{})
	ctx := context.Background()

	node := core.DataNode(store.P("cells", "c1"))
	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, node, lock.X); err != nil {
		t.Fatal(err)
	}
	tb, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	err = tb.Lock(ctx, node, lock.X, client.WithTimeout(30*time.Millisecond))
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
	if cause, retry := resilience.Classify(err); cause != resilience.CauseTimeout || !retry {
		t.Errorf("classify = (%v,%v)", cause, retry)
	}
	ta.Abort()
	tb.Abort()
}

// TestShedOverWire: the admission gate installed via server options sheds
// a Begin while the waits-for graph is saturated, and the refusal
// classifies as a retryable shed on the client.
func TestShedOverWire(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{
		Admission: lock.AdmissionConfig{MaxWaiters: 1, Mode: lock.AdmitShed},
	})
	a := dial(t, srv, client.Options{})
	b := dial(t, srv, client.Options{})
	c := dial(t, srv, client.Options{})
	ctx := context.Background()

	node := core.DataNode(store.P("cells", "c1"))
	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, node, lock.X); err != nil {
		t.Fatal(err)
	}
	tb, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() { parked <- tb.Lock(ctx, node, lock.X) }()
	waitFor(t, 2*time.Second, func() bool { return mgr.WaitingTxns() == 1 }, "b to saturate the gate")

	if _, err := c.Begin(ctx); !errors.Is(err, lock.ErrShed) {
		t.Fatalf("Begin under saturation = %v, want ErrShed", err)
	} else if _, retry := resilience.Classify(err); !retry {
		t.Error("shed Begin not retryable")
	}

	ta.Abort()
	if err := <-parked; err != nil {
		t.Fatalf("b after a aborted: %v", err)
	}
	tb.Abort()
}

// TestLeaseExpiryFreesLocks: a client that stops pinging has its session
// expired, its transactions aborted server-side and every lock released;
// the client's next call reports the expiry.
func TestLeaseExpiryFreesLocks(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{Lease: 80 * time.Millisecond})
	c, err := client.Dial(srv.Addr(), client.Options{NoKeepalive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Lock(ctx, core.DataNode(store.P("cells", "c1")), lock.X); err != nil {
		t.Fatal(err)
	}
	if mgr.LockCount() == 0 {
		t.Fatal("no locks held before expiry")
	}

	// No frames flow; the lease loop must expire the session and free the
	// locks without any client cooperation.
	waitFor(t, 5*time.Second, func() bool { return mgr.LockCount() == 0 }, "lease expiry to free locks")
	waitFor(t, 5*time.Second, func() bool { return srv.SessionCount() == 0 }, "session teardown")
	waitFor(t, 5*time.Second, func() bool { return c.Err() != nil }, "client to observe expiry")
	if err := c.Err(); !errors.Is(err, wire.ErrSessionExpired) {
		t.Errorf("client error = %v, want session-expired", err)
	}
	if err := tx.Lock(ctx, core.DataNode(store.P("cells", "c2")), lock.S); err == nil {
		t.Error("lock on expired session succeeded")
	}
}

// TestKeepaliveSurvivesLease: the automatic keepalive outlives several
// lease intervals with no other traffic.
func TestKeepaliveSurvivesLease(t *testing.T) {
	srv, _ := startServer(t, lock.PolicyDetect, server.Options{Lease: 120 * time.Millisecond})
	c := dial(t, srv, client.Options{})
	time.Sleep(500 * time.Millisecond) // > 4 leases
	if err := c.Err(); err != nil {
		t.Fatalf("session died despite keepalive: %v", err)
	}
	if _, err := c.Begin(context.Background()); err != nil {
		t.Fatalf("Begin after idling: %v", err)
	}
}

// TestDrainRefusesNewWhileInflightFinish: Drain refuses new sessions and
// new transactions retryably, waits for the in-flight transaction, then
// completes.
func TestDrainRefusesNewWhileInflightFinish(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{})
	a := dial(t, srv, client.Options{})
	ctx := context.Background()

	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, core.DataNode(store.P("cells", "c1")), lock.X); err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	go func() { drained <- srv.Drain(dctx) }()
	waitFor(t, 2*time.Second, srv.Draining, "server to enter draining")

	// New sessions are refused at the handshake.
	if _, err := client.Dial(srv.Addr(), client.Options{DialTimeout: 2 * time.Second}); !errors.Is(err, lock.ErrShed) {
		t.Errorf("Dial while draining = %v, want shed-classified refusal", err)
	}
	// New transactions on live sessions are refused retryably.
	if _, err := a.Begin(ctx); !errors.Is(err, lock.ErrShed) {
		t.Errorf("Begin while draining = %v, want shed-classified refusal", err)
	}
	// The in-flight transaction still commits.
	if err := ta.Commit(); err != nil {
		t.Fatalf("commit while draining: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if mgr.LockCount() != 0 {
		t.Errorf("locks after drain: %d", mgr.LockCount())
	}
}

// TestAbruptDisconnectFreesLocks: cutting the connection without commit
// aborts the session's transactions (workstation crash).
func TestAbruptDisconnectFreesLocks(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{})
	c := dial(t, srv, client.Options{})
	ctx := context.Background()
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Lock(ctx, core.DataNode(store.P("cells", "c1")), lock.X); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitFor(t, 5*time.Second, func() bool { return mgr.LockCount() == 0 }, "disconnect to free locks")
}

// TestDeEscalateAndUnlockOverWire: the Downgrade and Release frames reach
// DeEscalate/Unlock — after de-escalating a relation X to one kept tuple,
// another session can lock a sibling tuple.
func TestDeEscalateAndUnlockOverWire(t *testing.T) {
	srv, _ := startServer(t, lock.PolicyDetect, server.Options{})
	a := dial(t, srv, client.Options{})
	b := dial(t, srv, client.Options{})
	ctx := context.Background()

	rel := core.DataNode(store.P("cells"))
	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, rel, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := ta.DeEscalate(rel, []store.Path{store.P("cells", "c1")}); err != nil {
		t.Fatal(err)
	}

	tb, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// c2 is free after the de-escalation; c1 is still held.
	if err := tb.Lock(ctx, core.DataNode(store.P("cells", "c2")), lock.X,
		client.WithTimeout(2*time.Second)); err != nil {
		t.Fatalf("sibling lock after de-escalation: %v", err)
	}
	err = tb.Lock(ctx, core.DataNode(store.P("cells", "c1")), lock.X, client.WithTimeout(30*time.Millisecond))
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("kept tuple unexpectedly free: %v", err)
	}

	// Early single release (rule 5) frees the kept tuple. ta still holds the
	// locks the de-escalation propagated into referenced common data
	// (effectors), so the probe uses NOFOLLOW — which also proves the
	// NoFollow flag crosses the wire.
	if err := ta.Unlock(core.DataNode(store.P("cells", "c1"))); err != nil {
		t.Fatal(err)
	}
	if err := tb.Lock(ctx, core.DataNode(store.P("cells", "c1")), lock.X,
		client.WithTimeout(2*time.Second), client.WithNoFollow()); err != nil {
		t.Fatalf("kept tuple after Unlock: %v", err)
	}
	ta.Abort()
	tb.Abort()
}

// TestRunWithRetryOverWire: two clients hammer an ABBA pattern through
// RunWithRetry; server-reported victims are retried and both eventually
// commit.
func TestRunWithRetryOverWire(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{})
	ctx := context.Background()
	n1 := core.DataNode(store.P("cells", "c1"))
	n2 := core.DataNode(store.P("cells", "c2"))

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		c := dial(t, srv, client.Options{})
		first, second := n1, n2
		if i == 1 {
			first, second = n2, n1
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.RunWithRetry(ctx, func(tx *client.Txn) error {
				if err := tx.Lock(ctx, first, lock.X); err != nil {
					return err
				}
				return tx.Lock(ctx, second, lock.X)
			}, client.WithMaxAttempts(0), client.WithAttemptTimeout(5*time.Second))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if mgr.LockCount() != 0 {
		t.Errorf("locks after retries: %d", mgr.LockCount())
	}
}

// TestPipelinedConcurrentTxns: many goroutines share one client, each
// driving its own transaction over the single pipelined connection.
func TestPipelinedConcurrentTxns(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{})
	c := dial(t, srv, client.Options{})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.RunWithRetry(ctx, func(tx *client.Txn) error {
				return tx.Lock(ctx, core.DataNode(store.P("cells", "c1")), lock.S)
			}, client.WithAttemptTimeout(5*time.Second))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
	if mgr.LockCount() != 0 {
		t.Errorf("locks left behind: %d", mgr.LockCount())
	}
}

// TestFinishBypassesInflightCap: with every inflight slot held by a
// blocked acquisition, a pipelined Commit must still reach the server
// (finish frames are exempt from the max-inflight cap) — otherwise the
// committing transaction leaks and the blocked one waits forever with no
// deadlock cycle to detect.
func TestFinishBypassesInflightCap(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{MaxInflight: 1})
	c := dial(t, srv, client.Options{})
	ctx := context.Background()

	node := core.DataNode(store.P("cells", "c1"))
	ta, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, node, lock.X); err != nil {
		t.Fatal(err)
	}
	tb, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- tb.Lock(ctx, node, lock.X) }()
	waitFor(t, 2*time.Second, func() bool { return mgr.WaitingTxns() == 1 }, "b to park on the single slot")

	// The one slot is held by b's parked acquire; a's Commit must not be
	// refused busy and must unblock b.
	if err := ta.Commit(); err != nil {
		t.Fatalf("commit with inflight cap saturated: %v", err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("b after a's commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b still parked after a committed — finish frame never reached the server")
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return mgr.LockCount() == 0 }, "lock table to drain")
}

// TestSmallInflightPipelineNoDeadlock hammers a tiny inflight cap with
// conflicting pipelined transactions on one connection: worker-pool
// growth must keep pace with enqueued frames (the idle-claim is atomic),
// and busy refusals must stay retryable, so every transaction finishes.
func TestSmallInflightPipelineNoDeadlock(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{MaxInflight: 2})
	c := dial(t, srv, client.Options{})
	ctx := context.Background()
	n1 := core.DataNode(store.P("cells", "c1"))
	n2 := core.DataNode(store.P("cells", "c2"))

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		first, second := n1, n2
		if i%2 == 1 {
			first, second = n2, n1
		}
		wg.Add(1)
		go func(i int, first, second core.Node) {
			defer wg.Done()
			errs[i] = c.RunWithRetry(ctx, func(tx *client.Txn) error {
				if err := tx.Lock(ctx, first, lock.X); err != nil {
					return err
				}
				return tx.Lock(ctx, second, lock.X)
			}, client.WithMaxAttempts(0), client.WithAttemptTimeout(5*time.Second))
		}(i, first, second)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
	if mgr.LockCount() != 0 {
		t.Errorf("locks left behind: %d", mgr.LockCount())
	}
}

// TestLockCtxCancel: canceling the ctx of a parked Lock returns promptly
// client-side even though the ctx carries no deadline. The server may
// still grant the abandoned acquisition; aborting the transaction then
// discards it, per the documented contract.
func TestLockCtxCancel(t *testing.T) {
	srv, mgr := startServer(t, lock.PolicyDetect, server.Options{})
	a := dial(t, srv, client.Options{})
	b := dial(t, srv, client.Options{})
	ctx := context.Background()

	node := core.DataNode(store.P("cells", "c1"))
	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Lock(ctx, node, lock.X); err != nil {
		t.Fatal(err)
	}
	tb, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	got := make(chan error, 1)
	go func() { got <- tb.Lock(cctx, node, lock.X) }()
	waitFor(t, 2*time.Second, func() bool { return mgr.WaitingTxns() == 1 }, "b to park behind a")

	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled lock returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Lock did not return after ctx cancellation")
	}

	// Commit a first: b's abandoned acquire is still parked server-side
	// and b's per-txn mutex is held until it resolves.
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	tb.Abort()
	waitFor(t, 5*time.Second, func() bool { return mgr.LockCount() == 0 }, "abort to discard the abandoned grant")
}

// TestTinyLeaseClamped: a degenerate lease must not panic the lease
// poller's ticker; New clamps it and the clamped value is what the
// handshake announces.
func TestTinyLeaseClamped(t *testing.T) {
	srv, _ := startServer(t, lock.PolicyDetect, server.Options{Lease: 1}) // 1ns
	c := dial(t, srv, client.Options{})
	if c.Lease() < 20*time.Millisecond {
		t.Fatalf("announced lease %v, want the clamped minimum", c.Lease())
	}
	// The keepalive runs off the clamped lease; the session must survive
	// several intervals.
	time.Sleep(100 * time.Millisecond)
	if _, err := c.Begin(context.Background()); err != nil {
		t.Fatalf("Begin after idling on a clamped lease: %v", err)
	}
}

// TestMaxSessionsRefusal: the session cap refuses the surplus dial with a
// shed-classified error.
func TestMaxSessionsRefusal(t *testing.T) {
	srv, _ := startServer(t, lock.PolicyDetect, server.Options{MaxSessions: 1})
	_ = dial(t, srv, client.Options{})
	if _, err := client.Dial(srv.Addr(), client.Options{DialTimeout: 2 * time.Second}); !errors.Is(err, lock.ErrShed) {
		t.Fatalf("surplus dial = %v, want shed-classified refusal", err)
	}
}
