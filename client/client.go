// Package client is the Go client for the colockd network lock service:
// Dial opens a session speaking the wire protocol (DESIGN.md §16), Begin
// hands out transactions whose Lock/LockPath/DeEscalate/Unlock/Commit/
// Abort mirror the in-process internal/txn API, and RunWithRetry restarts
// transactions on the causes the server reports — deadlock victim,
// wait-die death, timeout, shed — exactly as the local retry layer does,
// because failures arrive as the same *lock.LockError values (cause
// sentinel and blocker set reconstructed from the wire).
//
// A session is leased: the client keeps it alive automatically by pinging
// at a third of the server-announced interval. If the process stalls past
// the lease (or the connection drops), the server aborts the session's
// transactions and releases their locks — the workstation-crash semantics
// of the paper's workstation–server model. Requests are pipelined over one
// TCP connection: any number of goroutines may share a Client, and each
// transaction must be driven by one goroutine at a time, like a local
// txn.Txn.
//
// Context cancellation on Begin/Lock returns promptly, like its local
// counterpart, but withdraws the wait only client-side: the wire has no
// withdraw frame, so the server may still perform the abandoned
// operation. An abandoned Begin's transaction is aborted automatically
// when its reply arrives; after an abandoned Lock the transaction may
// hold the lock and should be aborted to discard it.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/wire"
)

// ErrClosed is returned for calls on a closed or broken session. The
// Client records the first fatal error; Err returns it.
var ErrClosed = errors.New("client: session closed")

// Options tunes Dial.
type Options struct {
	// DialTimeout bounds the TCP connect + handshake. Defaults to 10s.
	DialTimeout time.Duration
	// NoKeepalive disables the automatic lease ping. The caller then owns
	// the lease: without frames the server expires the session and aborts
	// its transactions. Meant for tests and for processes with their own
	// heartbeat discipline.
	NoKeepalive bool
}

// Client is one wire session. Safe for concurrent use; requests from many
// goroutines pipeline over the single connection.
type Client struct {
	conn    net.Conn
	fw      *wire.FrameWriter
	session uint64
	lease   time.Duration

	nextReq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan wire.Frame
	err     error // first fatal error; nil while healthy
	closed  bool

	stopPing chan struct{}
	pingDone chan struct{}
	readDone chan struct{}
}

// replyChans recycles the one-shot reply channels of completed calls.
var replyChans = sync.Pool{New: func() any { return make(chan wire.Frame, 1) }}

// Dial connects to a colockd server and performs the handshake. The
// returned client's lease keepalive is already running (unless disabled).
func Dial(addr string, opts Options) (*Client, error) {
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteHello(conn, wire.Hello{Version: wire.Version}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	wl, err := wire.ReadWelcome(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	switch wl.Code {
	case wire.WelcomeOK:
	case wire.WelcomeVersionUnsupported:
		conn.Close()
		return nil, fmt.Errorf("client: server speaks version %d, this client version %d", wl.Version, wire.Version)
	case wire.WelcomeDraining:
		conn.Close()
		return nil, fmt.Errorf("client: %w", wire.ErrDraining)
	case wire.WelcomeSessionLimit:
		conn.Close()
		return nil, fmt.Errorf("client: server at session limit (%w)", wire.ErrBusy)
	default:
		conn.Close()
		return nil, fmt.Errorf("client: handshake refused with code %d", wl.Code)
	}
	c := &Client{
		conn:     conn,
		fw:       wire.NewFrameWriter(conn),
		session:  wl.Session,
		lease:    time.Duration(wl.Lease),
		pending:  make(map[uint64]chan wire.Frame),
		stopPing: make(chan struct{}),
		pingDone: make(chan struct{}),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	if opts.NoKeepalive || c.lease <= 0 {
		close(c.pingDone)
	} else {
		go c.keepalive()
	}
	return c, nil
}

// Session returns the server-assigned session id.
func (c *Client) Session() uint64 { return c.session }

// Lease returns the server-announced lease interval the session must beat.
func (c *Client) Lease() time.Duration { return c.lease }

// Err returns the error that broke the session, or nil while healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed && c.err == nil {
		return ErrClosed
	}
	return c.err
}

// Close ends the session. Server-side, the connection teardown aborts any
// transactions still active — equivalent to a workstation crash, so no
// lock outlives the session.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	<-c.pingDone
	<-c.readDone
	return nil
}

// fail records the first fatal error, fails every pending call and closes
// the connection. Idempotent.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	if !errors.Is(err, ErrClosed) {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan wire.Frame)
	c.mu.Unlock()
	close(c.stopPing)
	_ = c.conn.Close()
	for _, ch := range pending {
		close(ch) // receivers observe the closed channel and report Err
	}
}

// readLoop demultiplexes reply frames onto pending calls by request id.
// Reqid 0 carries unsolicited server notices (lease expiry, drain): they
// are session-fatal by spec, so the loop fails the session with the
// decoded error.
func (c *Client) readLoop() {
	defer close(c.readDone)
	br := bufio.NewReaderSize(c.conn, 32<<10)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("client: connection closed by server (%w)", ErrClosed)
			}
			c.fail(err)
			return
		}
		if f.ReqID == 0 {
			if f.Type == wire.TErr {
				if p, perr := wire.DecodeErrPayload(f.Payload); perr == nil {
					c.fail(p.Err())
					return
				}
			}
			c.fail(fmt.Errorf("client: unsolicited %s notice", wire.TypeName(f.Type)))
			return
		}
		c.mu.Lock()
		ch := c.pending[f.ReqID]
		delete(c.pending, f.ReqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
			continue
		}
		// No owner: the call was withdrawn by ctx cancellation. A plain
		// outcome is dropped, but a Txn reply means an abandoned Begin
		// created a transaction nobody will ever drive — abort it so its
		// (future) locks cannot outlive the caller that gave up.
		if f.Type == wire.TTxn {
			if m, err := wire.DecodeTxnReply(f.Payload); err == nil {
				go func() {
					_ = c.callOutcome(context.Background(), wire.TAbort, wire.TxnReq{Txn: m.Txn}.Encode())
				}()
			}
		}
	}
}

// keepalive pings at a third of the lease so two losses still beat the
// deadline. The interval is floored at 1ms so a degenerate lease from
// the server cannot panic the ticker.
func (c *Client) keepalive() {
	defer close(c.pingDone)
	interval := c.lease / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stopPing:
			return
		case <-tick.C:
			if err := c.Ping(); err != nil {
				return // session already failed; Ping recorded why
			}
		}
	}
}

// call sends one request frame and waits for its reply. A canceled ctx
// withdraws the wait client-side: the pending entry is removed and
// ctx.Err() returned. The server still executes the abandoned request —
// the wire has no withdraw frame — so after a canceled Lock the
// transaction's remote state is indeterminate and the caller should
// abort it; an abandoned Begin is cleaned up by readLoop, which aborts
// any Txn reply that no longer has an owner.
func (c *Client) call(ctx context.Context, typ byte, payload []byte) (wire.Frame, error) {
	id := c.nextReq.Add(1)
	ch := replyChans.Get().(chan wire.Frame)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return wire.Frame{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.fw.WriteFrame(typ, id, payload); err != nil {
		c.fail(fmt.Errorf("client: write: %w", err))
		return wire.Frame{}, c.Err()
	}
	if ctx == nil || ctx.Done() == nil {
		return c.await(ch)
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return wire.Frame{}, c.Err()
		}
		replyChans.Put(ch)
		return f, nil
	case <-ctx.Done():
		c.mu.Lock()
		_, mine := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if mine {
			// Withdrawn before the reply arrived. The channel is NOT
			// pooled: readLoop may have fetched it just before the delete
			// and still deliver into it; reusing it would cross-wire a
			// stale reply into a future call.
			return wire.Frame{}, ctx.Err()
		}
		// The reply raced the cancel and won (readLoop or fail already
		// claimed the entry): take it, the work is done anyway.
		return c.await(ch)
	}
}

// await receives the reply readLoop routes (or observes fail's close).
func (c *Client) await(ch chan wire.Frame) (wire.Frame, error) {
	f, ok := <-ch
	if !ok {
		// Closed by fail(): the session is dead and the channel is spent.
		return wire.Frame{}, c.Err()
	}
	replyChans.Put(ch)
	return f, nil
}

// callOutcome is call for requests answered by TOK / TErr.
func (c *Client) callOutcome(ctx context.Context, typ byte, payload []byte) error {
	f, err := c.call(ctx, typ, payload)
	if err != nil {
		return err
	}
	switch f.Type {
	case wire.TOK:
		return nil
	case wire.TErr:
		p, err := wire.DecodeErrPayload(f.Payload)
		if err != nil {
			return err
		}
		return p.Err()
	}
	return fmt.Errorf("client: unexpected %s reply", wire.TypeName(f.Type))
}

// Ping refreshes the lease explicitly (the keepalive calls it for you).
func (c *Client) Ping() error {
	f, err := c.call(nil, wire.TPing, nil)
	if err != nil {
		return err
	}
	if f.Type != wire.TPong {
		return fmt.Errorf("client: unexpected %s reply to Ping", wire.TypeName(f.Type))
	}
	return nil
}
