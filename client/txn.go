package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/resilience"
	"colock/internal/store"
	"colock/internal/wire"
)

// ErrNotActive is returned when operating on a finished transaction; it
// matches the wire's not-active cause as well, so a transaction the server
// aborted (lease expiry) reports the same way as one finished locally.
var ErrNotActive = wire.ErrNotActive

// Txn is a remote transaction. Like the in-process txn.Txn it is a single
// thread of execution: one goroutine drives it at a time, while the
// Client underneath is fully concurrent.
type Txn struct {
	c    *Client
	id   lock.TxnID
	long bool

	mu       sync.Mutex
	finished bool
}

// Begin starts a short transaction on the server. Admission control
// (shed/degrade) applies exactly as for a local BeginCtx; a shed Begin
// returns an error matching lock.ErrShed, which RunWithRetry retries.
func (c *Client) Begin(ctx context.Context) (*Txn, error) {
	return c.begin(ctx, false)
}

// BeginLong starts a long (durable-lock) transaction: its locks survive a
// simulated server crash, per the paper's check-out model.
func (c *Client) BeginLong(ctx context.Context) (*Txn, error) {
	return c.begin(ctx, true)
}

func (c *Client) begin(ctx context.Context, long bool) (*Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := c.call(ctx, wire.TBegin, wire.BeginReq{Long: long}.Encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case wire.TTxn:
		m, err := wire.DecodeTxnReply(f.Payload)
		if err != nil {
			return nil, err
		}
		return &Txn{c: c, id: lock.TxnID(m.Txn), long: long}, nil
	case wire.TErr:
		p, err := wire.DecodeErrPayload(f.Payload)
		if err != nil {
			return nil, err
		}
		return nil, p.Err()
	}
	return nil, fmt.Errorf("client: unexpected %s reply to Begin", wire.TypeName(f.Type))
}

// ID returns the server-assigned transaction identifier. Ids are global
// across all sessions of the server, so wait-die age ordering spans every
// connected client.
func (t *Txn) ID() lock.TxnID { return t.id }

// Long reports whether this is a long (durable-lock) transaction.
func (t *Txn) Long() bool { return t.long }

func (t *Txn) checkActive() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return ErrNotActive
	}
	return nil
}

// effTimeout folds a ctx deadline into the wire timeout: the smaller of
// the option timeout and the remaining ctx budget travels to the server,
// so per-attempt budgets (RunWithRetry's WithAttemptTimeout) bound remote
// acquisitions the same way they bound local ones. An already-expired
// budget fails fast client-side.
func effTimeout(ctx context.Context, opt time.Duration) (time.Duration, error) {
	d, ok := ctx.Deadline()
	if !ok {
		return opt, nil
	}
	rem := time.Until(d)
	if rem <= 0 {
		return 0, context.DeadlineExceeded
	}
	if opt <= 0 || rem < opt {
		return rem, nil
	}
	return opt, nil
}

// Lock acquires a protocol lock on a node, mirroring txn.Txn.Lock: the
// full rule 1-5 chain runs server-side; WithTimeout bounds each
// acquisition; WithNoFollow skips downward propagation into referenced
// common data. On a failure the error is the server's *lock.LockError,
// cause sentinel and blocker set intact. A nil ctx is allowed. A ctx
// deadline travels to the server as a wait bound; cancellation without a
// deadline returns promptly but only abandons the wait client-side — the
// wire has no withdraw frame, so the server may still grant the lock to
// the transaction, which should then be aborted to discard it.
func (t *Txn) Lock(ctx context.Context, n core.Node, mode lock.Mode, opts ...Option) error {
	return t.lock(ctx, wire.TLock, wire.RefOf(n), mode, opts)
}

// LockPath is Lock on a data path.
func (t *Txn) LockPath(ctx context.Context, p store.Path, mode lock.Mode, opts ...Option) error {
	return t.lock(ctx, wire.TLockPath, wire.NodeRef{Level: wire.NodePath, Path: p}, mode, opts)
}

func (t *Txn) lock(ctx context.Context, typ byte, ref wire.NodeRef, mode lock.Mode, opts []Option) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cfg := buildConfig(opts)
	timeout, err := effTimeout(ctx, cfg.timeout)
	if err != nil {
		return &lock.LockError{Txn: t.id, Mode: mode, Cause: err}
	}
	return t.c.callOutcome(ctx, typ, wire.LockReq{
		Txn:      uint64(t.id),
		Node:     ref,
		Mode:     mode,
		NoFollow: cfg.noFollow,
		Timeout:  timeout,
	}.Encode())
}

// DeEscalate trades the transaction's coarse S/X lock on a node for locks
// of the same mode on the kept descendant paths (§5 de-escalation). On the
// wire this is the Downgrade frame.
func (t *Txn) DeEscalate(n core.Node, keep []store.Path) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	ks := make([][]string, 0, len(keep))
	for _, p := range keep {
		ks = append(ks, p)
	}
	return t.c.callOutcome(nil, wire.TDowngrade, wire.DowngradeReq{
		Txn:  uint64(t.id),
		Node: wire.RefOf(n),
		Keep: ks,
	}.Encode())
}

// Unlock releases a single lock early in leaf-to-root order (rule 5),
// giving up strictness like its local counterpart. On the wire this is
// the Release frame.
func (t *Txn) Unlock(n core.Node) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	return t.c.callOutcome(nil, wire.TRelease, wire.ReleaseReq{
		Txn:  uint64(t.id),
		Node: wire.RefOf(n),
	}.Encode())
}

// refusedUnexecuted reports whether a finish request was turned away by
// an admission layer without reaching the transaction — the server-side
// txn is then still live and the client must not mark it finished, or
// its locks leak until the whole session closes. Servers exempt Commit
// and Abort from the max-inflight cap, so this is a defensive guard for
// peers that do not.
func refusedUnexecuted(err error) bool {
	return errors.Is(err, lock.ErrShed)
}

// Commit commits the transaction server-side, releasing all its locks.
// If the request is refused before executing (a shed-classified
// admission error), the transaction stays active: retry Commit, or
// Abort it — do not abandon it, its locks are still held.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrNotActive
	}
	t.finished = true
	t.mu.Unlock()
	err := t.c.callOutcome(nil, wire.TCommit, wire.TxnReq{Txn: uint64(t.id)}.Encode())
	if err != nil && refusedUnexecuted(err) {
		t.mu.Lock()
		t.finished = false
		t.mu.Unlock()
	}
	return err
}

// Abort aborts the transaction server-side, releasing all its locks.
// Aborting a finished transaction is a no-op, and a session-level failure
// is swallowed — the server aborts orphaned transactions on teardown
// anyway, so Abort is safe in deferred cleanup paths. An admission
// refusal (which leaves the transaction live) is retried briefly so a
// momentary max-inflight spike cannot leak the transaction's locks.
func (t *Txn) Abort() {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.mu.Unlock()
	for attempt := 0; ; attempt++ {
		err := t.c.callOutcome(nil, wire.TAbort, wire.TxnReq{Txn: uint64(t.id)}.Encode())
		if err == nil || !refusedUnexecuted(err) || attempt >= 4 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RunWithRetry executes body inside a fresh remote transaction per
// attempt, retrying every failure the resilience layer classifies as
// transient — deadlock victim, wait-die death, timeout, shed (including
// server-side drain and busy refusals, which the wire maps onto the shed
// cause). Because the client reconstructs the server's *lock.LockError
// values, classification is byte-for-byte the decision the in-process
// RunWithRetry would have made. Defaults: 10 attempts, immediate restart.
func (c *Client) RunWithRetry(ctx context.Context, body func(*Txn) error, opts ...Option) error {
	cfg := buildConfig(opts)
	maxAttempts := 10
	if cfg.maxAttemptsSet {
		maxAttempts = cfg.maxAttempts
	}
	r := &resilience.Retrier{
		MaxAttempts:    maxAttempts,
		Backoff:        cfg.backoff,
		AttemptTimeout: cfg.attemptTimeout,
		Observer:       cfg.observer,
	}
	return r.Run(ctx, func(actx context.Context) error {
		t, err := c.beginRetryable(actx)
		if err != nil {
			return err
		}
		if err := body(t); err != nil {
			t.Abort()
			return err
		}
		if err := t.Commit(); err != nil {
			// A refused Commit leaves the transaction live; abort it so
			// the retry's fresh transaction cannot queue behind the old
			// one's locks (no-op when Commit actually finished).
			t.Abort()
			return err
		}
		return nil
	})
}

// beginRetryable is Begin, but a Begin refused because the attempt budget
// expired is normalized so Classify treats it as a timeout.
func (c *Client) beginRetryable(ctx context.Context) (*Txn, error) {
	t, err := c.Begin(ctx)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil {
		return nil, &lock.LockError{Cause: context.DeadlineExceeded}
	}
	return t, err
}
