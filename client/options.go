package client

import (
	"time"

	"colock/internal/resilience"
)

// Option customizes Txn.Lock / Txn.LockPath calls and Client.RunWithRetry
// runs — the same single-set shape as the in-process txn.Option, so code
// ported from internal/txn keeps its variadic tails unchanged. Options
// that don't apply to the receiving call are ignored.
type Option func(*config)

type config struct {
	// Per-lock-call.
	timeout  time.Duration
	noFollow bool

	// Per-RunWithRetry.
	maxAttempts    int
	maxAttemptsSet bool
	backoff        resilience.Backoff
	attemptTimeout time.Duration
	observer       resilience.Observer
}

func buildConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithTimeout bounds each lock-manager acquisition server-side: the
// duration travels in the request and a lock not granted within it is
// withdrawn, failing with lock.ErrTimeout exactly as locally.
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithNoFollow locks a data path without downward propagation into
// referenced common data (§4.5, NOFOLLOW queries).
func WithNoFollow() Option {
	return func(c *config) { c.noFollow = true }
}

// WithMaxAttempts bounds RunWithRetry's total attempts; n <= 0 means
// unlimited (bounded only by the context). Default is 10.
func WithMaxAttempts(n int) Option {
	return func(c *config) { c.maxAttempts = n; c.maxAttemptsSet = true }
}

// WithBackoff sets RunWithRetry's restart pacing policy. Default is an
// immediate restart.
func WithBackoff(b resilience.Backoff) Option {
	return func(c *config) { c.backoff = b }
}

// WithAttemptTimeout gives each RunWithRetry attempt its own budget. The
// remaining budget is folded into every lock request's wire timeout, so
// the server withdraws acquisitions the attempt can no longer afford.
func WithAttemptTimeout(d time.Duration) Option {
	return func(c *config) { c.attemptTimeout = d }
}

// WithRetryObserver wires a resilience.Observer into RunWithRetry,
// recording retries by cause and attempts-per-commit.
func WithRetryObserver(o resilience.Observer) Option {
	return func(c *config) { c.observer = o }
}
