// Package colock_test holds the benchmark harness: one testing.B benchmark
// per experiment of DESIGN.md §5 (E1–E11, regenerating the quantitative
// counterpart of every qualitative claim in the paper's §4.6 plus the
// de-escalation and BLU-coalescing ablations), and microbenchmarks of the
// protocol's primitive operations.
//
// Run with: go test -bench=. -benchmem
package colock_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/experiments"
	"colock/internal/lock"
	"colock/internal/query"
	"colock/internal/store"
	"colock/internal/txn"
	"colock/internal/workload"
)

// --- Experiment benchmarks (tables of EXPERIMENTS.md) ---

func BenchmarkE1Fig7Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E1Fig7Concurrency(10)
	}
}

func BenchmarkE2Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E2Granularity(8, 50, 100*time.Microsecond)
	}
}

func BenchmarkE3SharedXLock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E3SharedXLock([]int{2, 8, 32})
	}
}

func BenchmarkE4FromTheSide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E4FromTheSide(5)
	}
}

func BenchmarkE5Authorization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5Authorization([]int{8}, 100*time.Microsecond)
	}
}

func BenchmarkE6Escalation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6Escalation(200, []float64{0.05, 0.5, 1.0})
	}
}

func BenchmarkE7LongTransactions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E7LongTransactions(8, 10*time.Millisecond)
	}
}

func BenchmarkE8DisjointOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E8DisjointOverhead(16, 4)
	}
}

func BenchmarkE9BenefitSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E9BenefitSweep([]int{1, 3}, 10*time.Millisecond)
	}
}

func BenchmarkE10DeEscalation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E10DeEscalation(8, 10*time.Millisecond)
	}
}

func BenchmarkE11BLUCoalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E11BLUCoalescing(32)
	}
}

func BenchmarkE12RecursiveClosure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E12RecursiveClosure([]int{2, 8, 32})
	}
}

func BenchmarkE13DeadlockPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E13DeadlockPolicy(4, 10)
	}
}

// --- Microbenchmarks of the primitive operations ---

func protoStack(rule4Prime bool) (*core.Protocol, *store.Store, *authz.Table) {
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	var opts core.Options
	if rule4Prime {
		opts = core.Options{Rule4Prime: true, Authorizer: auth}
	}
	return core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, opts), st, auth
}

// BenchmarkLockAcquireRelease measures a plain lock-manager round trip.
func BenchmarkLockAcquireRelease(b *testing.B) {
	mgr := lock.NewManager(lock.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := mgr.AcquireCtx(context.Background(), 1, "r", lock.X); err != nil {
			b.Fatal(err)
		}
		mgr.ReleaseAll(1)
	}
}

// BenchmarkLockAcquireCtxParallel measures the sharded table under
// concurrent disjoint acquire/release (RunParallel scales goroutines with
// -cpu); each worker owns its resource set, so throughput is bounded by
// shard-latch and atomic-counter costs, not by lock conflicts.
func BenchmarkLockAcquireCtxParallel(b *testing.B) {
	mgr := lock.NewManager(lock.Options{})
	ctx := context.Background()
	var ids atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := lock.TxnID(ids.Add(1))
		rs := make([]lock.Resource, 8)
		for k := range rs {
			rs[k] = lock.Resource(fmt.Sprintf("w%d/r%d", id, k))
		}
		for pb.Next() {
			for _, r := range rs {
				if err := mgr.AcquireCtx(ctx, id, r, lock.X); err != nil {
					b.Fatal(err)
				}
			}
			mgr.ReleaseAll(id)
		}
	})
}

// BenchmarkProtocolLockDisjoint measures a full protocol X on a disjoint
// part (ancestor chain, no propagation).
func BenchmarkProtocolLockDisjoint(b *testing.B) {
	proto, _, _ := protoStack(false)
	p := store.P("cells", "c1", "c_objects", "o1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := proto.LockPath(1, p, lock.X); err != nil {
			b.Fatal(err)
		}
		proto.Release(1)
	}
}

// BenchmarkProtocolLockShared measures a protocol X on a robot with
// downward propagation onto two shared effectors (the Figure 7 request).
func BenchmarkProtocolLockShared(b *testing.B) {
	proto, _, auth := protoStack(true)
	auth.Grant(1, "cells")
	p := store.P("cells", "c1", "robots", "r1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := proto.LockPath(1, p, lock.X); err != nil {
			b.Fatal(err)
		}
		proto.Release(1)
	}
}

// BenchmarkDeriveGraph measures object-specific lock graph derivation.
func BenchmarkDeriveGraph(b *testing.B) {
	st := store.PaperDatabase()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.DeriveGraph(st.Catalog(), "cells"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeUnits measures the Figure 6 unit decomposition.
func BenchmarkComputeUnits(b *testing.B) {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	obj := store.P("cells", "c1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ComputeUnits(st, nm, obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParse measures parsing of the Figure 3 query Q2.
func BenchmarkQueryParse(b *testing.B) {
	src := `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEndToEnd measures parse+analyze+plan+execute of Q2 inside a
// transaction.
func BenchmarkQueryEndToEnd(b *testing.B) {
	proto, st, auth := protoStack(true)
	mgr := txn.NewManager(proto, st)
	exec := query.NewExecutor(mgr, core.PlannerOptions{})
	src := `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := mgr.Begin()
		auth.Grant(tx.ID(), "cells")
		if _, _, err := exec.Run(tx, src); err != nil {
			b.Fatal(err)
		}
		tx.Abort()
	}
}

// BenchmarkPlanQuery measures §4.5 lock-request determination alone.
func BenchmarkPlanQuery(b *testing.B) {
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	spec := core.QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []core.Hop{{Attrs: []string{"robots"}, Bound: true}},
		Access:      core.AccessUpdate,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanQuery(st.Catalog(), spec, core.PlannerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateDatabase measures the workload generator.
func BenchmarkGenerateDatabase(b *testing.B) {
	cfg := workload.Config{Seed: 1, Cells: 32, CObjectsPerCell: 16, RobotsPerCell: 4, EffectorsPerRobot: 2, Effectors: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = workload.Generate(cfg)
	}
}

// BenchmarkBackRefsScan measures the reverse-reference scan the traditional
// DAG baseline must pay (E3's cost driver), at several database sizes.
func BenchmarkBackRefsScan(b *testing.B) {
	for _, cells := range []int{8, 64} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			st := workload.Generate(workload.Config{Seed: 3, Cells: cells, RobotsPerCell: 4, EffectorsPerRobot: 2, Effectors: 4})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = st.BackRefs("effectors", "e0")
			}
		})
	}
}
