GO ?= go

.PHONY: ci vet build test race bench shardbench figures clean

# ci is the gate every change must pass: vet, build, and the full test
# suite under the race detector (the lock manager and protocol are
# concurrent; -race is not optional here).
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# shardbench regenerates BENCH_PR1.json (sharded lock table vs the
# single-mutex seed replica; see DESIGN.md §8).
shardbench:
	$(GO) run ./cmd/lockbench -shardbench -shardout BENCH_PR1.json

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
