GO ?= go

.PHONY: ci fmt vet build test race bench shardbench obsbench tracebench hotbench hotbench-smoke stormbench stormbench-smoke healthbench healthmon-smoke journalbench journal-smoke grantbench grantbench-smoke netbench netbench-smoke benchdiff nodeprecated doc-lint drift-check obs-demo trace-demo figures clean

# ci is the gate every change must pass: formatting, vet, the
# no-deprecated-wrappers grep, the godoc and docs-drift lints, build, the
# full test suite under the race detector (the lock manager and protocol
# are concurrent; -race is not optional here), the end-to-end
# incident-dump demo, the fast-path, contention-survival, grant-path, and
# network smoke benchmarks, the health-monitor smoke gate, and the
# journal-forensics smoke gate.
ci: fmt vet nodeprecated doc-lint drift-check build race trace-demo hotbench-smoke stormbench-smoke healthmon-smoke journal-smoke grantbench-smoke netbench-smoke

# fmt fails if any file needs gofmt, listing the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# shardbench regenerates BENCH_PR1.json (sharded lock table vs the
# single-mutex seed replica; see DESIGN.md §8).
shardbench:
	$(GO) run ./cmd/lockbench -shardbench -shardout BENCH_PR1.json

# obsbench regenerates BENCH_PR2.json (collector overhead + latency
# quantiles; see DESIGN.md §9).
obsbench:
	$(GO) run ./cmd/lockbench -obsbench -obsout BENCH_PR2.json

# tracebench regenerates BENCH_PR3.json (span-tracing overhead at 1-in-64
# sampling; see DESIGN.md §10).
tracebench:
	$(GO) run ./cmd/lockbench -tracebench -traceout BENCH_PR3.json

# hotbench regenerates BENCH_PR4.json (fast-path speedup: granted-mode
# cache + batched chain acquisition + name cache; see DESIGN.md §11).
hotbench:
	$(GO) run ./cmd/lockbench -hotbench -hotout BENCH_PR4.json

# hotbench-smoke runs a quick hotbench into a temp file and asserts, via the
# flag-gated validation test in cmd/lockbench, that the report parses, the
# fast path was live, and no row measured the fast path as a slowdown
# (speedup ≥ 1.0x; the committed BENCH_PR4.json documents the full ≥2x run).
hotbench-smoke:
	@f=$$(mktemp) && \
	$(GO) run ./cmd/lockbench -hotbench -quick -hotout "$$f" >/dev/null && \
	$(GO) test ./cmd/lockbench -count=1 -run TestExternalHotBenchFile -hotbenchfile "$$f" && \
	echo "hotbench-smoke: $$f passes (fast path live, no slowdown)" && \
	rm -f "$$f"

# stormbench regenerates BENCH_PR6.json (contention-survival goodput:
# RunWithRetry + backoff + admission vs bare spin-restart, plus the
# fixed-seed chaos convergence phase; see DESIGN.md §12).
stormbench:
	$(GO) run ./cmd/lockbench -stormbench -stormout BENCH_PR6.json

# stormbench-smoke runs a quick stormbench into a temp file and asserts, via
# the flag-gated validation test in cmd/lockbench, that the report parses,
# no row measured the survival kit as a slowdown (ratio ≥ 1.0x; the
# committed BENCH_PR6.json documents the full ≥1.5x run), and the fixed-seed
# chaos phase committed every transaction.
stormbench-smoke:
	@f=$$(mktemp) && \
	$(GO) run ./cmd/lockbench -stormbench -quick -stormout "$$f" >/dev/null && \
	$(GO) test ./cmd/lockbench -count=1 -run TestExternalStormBenchFile -stormbenchfile "$$f" && \
	echo "stormbench-smoke: $$f passes (kit no slower than bare, chaos converged)" && \
	rm -f "$$f"

# healthbench regenerates BENCH_PR7.json (health-monitor overhead at 1-in-64
# sampling + the SLO burn-and-recover storm; see DESIGN.md §13).
healthbench:
	$(GO) run ./cmd/lockbench -healthbench -healthout BENCH_PR7.json

# healthmon-smoke runs a scripted colockshell session that storms a hot key
# and dumps the /health document with `.health dump`, then asserts, via the
# flag-gated validation test in internal/health, that the dump parses, the
# verdict is well-formed, every windowed rate is present, and the storm's hot
# key leads the top-K contention sketch.
healthmon-smoke:
	@f=$$(mktemp) && \
	printf "%s\n" ".storm 8 10" ".health" ".health dump $$f" ".topk 5" ".quit" \
		| $(GO) run ./cmd/colockshell >/dev/null && \
	$(GO) test ./internal/health -count=1 -run TestExternalHealthFile -healthfile "$$f" && \
	echo "healthmon-smoke: $$f passes (verdict parses, hot key in top-K)" && \
	rm -f "$$f"

# journalbench regenerates BENCH_PR8.json (durable-journal overhead at
# 1-in-64 sampling against both the bare and collector baselines; see
# DESIGN.md §14).
journalbench:
	$(GO) run ./cmd/lockbench -journalbench -journalout BENCH_PR8.json

# journal-smoke runs a scripted colockshell session with a durable journal
# attached, storms a hot key, and dumps the live /health verdict; then it
# replays the journal offline with colockreplay -json and asserts, via the
# flag-gated validation test in cmd/colockreplay, that forensics sees the
# storm: the trajectory-leaf hot key, at least one convoy on it, and an SLO
# replay verdict that matches what the live monitor reported.
journal-smoke:
	@dir=$$(mktemp -d) && hf=$$(mktemp) && f=$$(mktemp) && \
	printf "%s\n" ".storm 8 10" ".journal flush" ".journal" ".health dump $$hf" ".quit" \
		| $(GO) run ./cmd/colockshell -journal "$$dir" >/dev/null && \
	$(GO) run ./cmd/colockreplay -dir "$$dir" -json "$$f" >/dev/null && \
	$(GO) test ./cmd/colockreplay -count=1 -run TestExternalReplayFile \
		-replayfile "$$f" -livehealth "$$hf" && \
	echo "journal-smoke: replay of $$dir passes (hot key, convoy, SLO verdict matches live)" && \
	rm -rf "$$dir" "$$hf" "$$f"

# grantbench regenerates BENCH_PR9.json (constant-time grant path:
# granted-group summaries + pooled wait blocks + deferred deadlock
# detection vs the pre-change map-scan replica; see DESIGN.md §15).
grantbench:
	$(GO) run ./cmd/lockbench -grantbench -grantout BENCH_PR9.json

# grantbench-smoke runs a quick grantbench into a temp file and asserts, via
# the flag-gated validation test in cmd/lockbench, that the report parses, no
# hot-root row measured the summary path as a slowdown (≥1.0x; the committed
# BENCH_PR9.json documents the full ≥1.3x run), the blocked path stays at
# ≤1 alloc/op, and the deferred detector resolved a real AB-BA cycle.
grantbench-smoke:
	@f=$$(mktemp) && \
	$(GO) run ./cmd/lockbench -grantbench -quick -grantout "$$f" >/dev/null && \
	$(GO) test ./cmd/lockbench -count=1 -run TestExternalGrantBenchFile -grantbenchfile "$$f" && \
	echo "grantbench-smoke: $$f passes (summaries live, blocked path alloc-free, detector resolves)" && \
	rm -f "$$f"

# netbench regenerates BENCH_PR10.json (colockd wire-protocol loopback
# cost vs the identical in-process loop; see DESIGN.md §16).
netbench:
	$(GO) run ./cmd/lockbench -netbench -netout BENCH_PR10.json

# netbench-smoke runs a quick netbench into a temp file and asserts, via
# the flag-gated validation test in cmd/lockbench, that the report parses,
# both sides measured real throughput, and the wire costs more than
# in-process (ratio > 1.0x; the committed full BENCH_PR10.json additionally
# documents the ≥50k acquires/s bar at 32 connections, which the same test
# enforces on full reports).
netbench-smoke:
	@f=$$(mktemp) && \
	$(GO) run ./cmd/lockbench -netbench -quick -netout "$$f" >/dev/null && \
	$(GO) test ./cmd/lockbench -count=1 -run TestExternalNetBenchFile -netbenchfile "$$f" && \
	echo "netbench-smoke: $$f passes (wire round trips real, costed against in-process)" && \
	rm -f "$$f"

# doc-lint asserts godoc hygiene: every package has a package doc comment
# and every exported symbol of the public API packages (client,
# internal/wire) is documented. See scripts/doclint.sh.
doc-lint:
	@sh scripts/doclint.sh

# drift-check asserts the docs have not drifted: every "DESIGN.md §N"
# reference resolves to a real heading and every intra-repo markdown link
# resolves to a real file. See scripts/docdrift.sh.
drift-check:
	@sh scripts/docdrift.sh

# benchdiff tabulates every committed BENCH_PR*.json so the performance
# trajectory of the PR sequence is visible in one table.
benchdiff:
	$(GO) run ./cmd/benchdiff

# nodeprecated fails the build if any Deprecated marker survives in
# internal/lock: the consolidated AcquireCtx + options API is the only
# acquire surface, and this gate keeps the legacy wrappers from creeping
# back.
nodeprecated:
	@if grep -rn "Deprecated:" internal/lock --include="*.go"; then \
		echo "nodeprecated: deprecated wrappers found in internal/lock"; exit 1; \
	else echo "nodeprecated: internal/lock is wrapper-free"; fi

# trace-demo runs a scripted colockshell session that forces a lock timeout,
# then asserts that an incident dump was produced and parses (via the
# flag-gated validation test in internal/trace).
trace-demo:
	@dir=$$(mktemp -d) && \
	printf "%s\n" ".forcetimeout" ".incident" ".quit" \
		| $(GO) run ./cmd/colockshell -incidents "$$dir" && \
	f=$$(ls "$$dir"/incident-*-timeout-*.jsonl 2>/dev/null | head -1) && \
	if [ -z "$$f" ]; then echo "trace-demo: no incident file produced"; exit 1; fi && \
	$(GO) test ./internal/trace -count=1 -run TestExternalIncidentFileParses -incidentfile "$$f" && \
	echo "trace-demo: incident dump $$f parses" && \
	rm -rf "$$dir"

# obs-demo runs a scripted colockshell session that takes locks and dumps
# the .metrics tables, the wait-queue view, and the waits-for DOT graph.
obs-demo:
	@printf "%s\n" \
		"SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE" \
		".metrics" ".queues all" ".dot" ".commit" ".quit" \
		| $(GO) run ./cmd/colockshell

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
