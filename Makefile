GO ?= go

.PHONY: ci fmt vet build test race bench shardbench obsbench obs-demo figures clean

# ci is the gate every change must pass: formatting, vet, build, and the
# full test suite under the race detector (the lock manager and protocol
# are concurrent; -race is not optional here).
ci: fmt vet build race

# fmt fails if any file needs gofmt, listing the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# shardbench regenerates BENCH_PR1.json (sharded lock table vs the
# single-mutex seed replica; see DESIGN.md §8).
shardbench:
	$(GO) run ./cmd/lockbench -shardbench -shardout BENCH_PR1.json

# obsbench regenerates BENCH_PR2.json (collector overhead + latency
# quantiles; see DESIGN.md §9).
obsbench:
	$(GO) run ./cmd/lockbench -obsbench -obsout BENCH_PR2.json

# obs-demo runs a scripted colockshell session that takes locks and dumps
# the .metrics tables, the wait-queue view, and the waits-for DOT graph.
obs-demo:
	@printf "%s\n" \
		"SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE" \
		".metrics" ".queues all" ".dot" ".commit" ".quit" \
		| $(GO) run ./cmd/colockshell

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
