module colock

go 1.22
