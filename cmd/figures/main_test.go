package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestFigurePrinters(t *testing.T) {
	cases := []struct {
		fn   func()
		want []string
	}{
		{figure1, []string{`Relation "cells"`, "ref - - -> effectors", `Relation "effectors"`}},
		{figure2, []string{"System R", "XSQL", "Complex Objects"}},
		{figure3, []string{"Q1:", "Q2:", "Q3:", "FOR UPDATE", "objectBound=true"}},
		{figure4, []string{"HeLU", "HoLU", "BLU", "validate against this general graph"}},
		{figure5, []string{`HoLU (Relation "cells")`, `BLU ("ref")  - - -> HeLU (C.O. "effectors")`, `BLU ("tool")`}},
		{figure6, []string{"Outer unit", "Inner unit \"effectors/e2\"", "superunit of effectors/e1"}},
		{figure7, []string{"Q2: IX", "Q3: IX", "Q2: X", "Q3: X", "Q2: S    Q3: S",
			"Lock acquisition trace of Q2", "grant    IX   db1", "grant    X    db1/seg1/cells/c1/robots/r1"}},
	}
	for i, c := range cases {
		out := capture(t, c.fn)
		for _, want := range c.want {
			if !strings.Contains(out, want) {
				t.Errorf("figure %d output misses %q:\n%s", i+1, want, out)
			}
		}
	}
}
