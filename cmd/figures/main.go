// Command figures reproduces every figure of the paper from the running
// implementation:
//
//	figures            # print all figures
//	figures -fig 5     # print one figure
//
// Figure 1: schema of the relations "cells" and "effectors";
// Figure 2: lock graphs of System R and XSQL;
// Figure 3: the queries Q1, Q2, Q3 (parsed and analyzed);
// Figure 4: the general lock graph for complex objects;
// Figure 5: the object-specific lock graph of "cells" (+ "effectors");
// Figure 6: the unit decomposition of complex object "cell c1";
// Figure 7: the exact lock sets held by Q2 and Q3.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/query"
	"colock/internal/schema"
	"colock/internal/store"
	"colock/internal/txn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.Int("fig", 0, "figure number to print (0 = all)")
	flag.Parse()

	printers := map[int]func(){
		1: figure1, 2: figure2, 3: figure3, 4: figure4,
		5: figure5, 6: figure6, 7: figure7,
	}
	if *fig != 0 {
		p, ok := printers[*fig]
		if !ok {
			log.Fatalf("no figure %d (have 1-7)", *fig)
		}
		p()
		return
	}
	for i := 1; i <= 7; i++ {
		printers[i]()
		fmt.Println()
	}
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func renderType(t *schema.Type, name, indent string) {
	switch t.Kind {
	case schema.KindSet, schema.KindList:
		fmt.Printf("%s%-12s %s\n", indent, name, t.Kind)
		renderType(t.Elem, "", indent+"  ")
	case schema.KindTuple:
		label := "T"
		if name != "" {
			fmt.Printf("%s%-12s %s\n", indent, name, label)
		} else {
			fmt.Printf("%s%s\n", indent, label)
		}
		for _, f := range t.Fields {
			renderType(f.Type, f.Name, indent+"  ")
		}
	case schema.KindRef:
		fmt.Printf("%s%-12s ref - - -> %s\n", indent, name, t.Target)
	default:
		fmt.Printf("%s%-12s %s\n", indent, name, t.Kind)
	}
}

func figure1() {
	header(`Figure 1: Non-Disjoint, Non-Recursive Complex Objects: Schema of "cells" and "effectors"`)
	cat := schema.PaperSchema()
	for _, rel := range []string{"cells", "effectors"} {
		r := cat.Relation(rel)
		fmt.Printf("Relation %q (segment %s, key %s)\n", r.Name, r.Segment, r.Key)
		for _, f := range r.Type.Fields {
			renderType(f.Type, f.Name, "  ")
		}
	}
}

func figure2() {
	header("Figure 2: Granularity of Locks: Lock Graphs (DAG) of System R (a) and XSQL (b)")
	fmt.Print(`(a) System R:            (b) XSQL:
    Database                 Database
       |                        |
    Segments                 Segments
     /     \                  /     \
Relations  Indexes      Relations  Indexes
     \     /                 |     /
      Tuples           Complex Objects
                             |
                          Tuples
`)
	fmt.Println("\nThe hierarchy (a) derives from the general lock graph as a special case;")
	fmt.Println("(b) adds the granule \"complex object\" between relation and tuple.")
}

func figure3() {
	header("Figure 3: Queries Q1, Q2 and Q3")
	srcs := []struct{ name, src string }{
		{"Q1", `SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ`},
		{"Q2", `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`},
		{"Q3", `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE`},
	}
	cat := schema.PaperSchema()
	for _, q := range srcs {
		parsed, err := query.Parse(q.src)
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		an, err := query.Analyze(cat, parsed, query.AnalyzeOptions{})
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		fmt.Printf("%s: %s\n", q.name, parsed)
		fmt.Printf("    access=%s objectBound=%v hops=%d\n",
			an.Spec.Access, an.Spec.ObjectBound, len(an.Spec.Hops))
	}
}

func figure4() {
	header("Figure 4: General Lock Graph for Disjoint and Non-Disjoint Complex Objects")
	fmt.Print(`  Heterogeneous Lockable Unit (HeLU)  -- composed of subobjects of different types
       |            \
  Homogeneous LU    Basic LU
   (HoLU: set/list)  (BLU: atomic attributes; may be a
       |              "reference to common data" - - -> entry point of an inner unit)
  (solid lines: composed-of; dashed: transition into shared data)
`)
	cat := schema.PaperSchema()
	for _, rel := range cat.Relations() {
		g, err := core.DeriveGraph(cat, rel.Name)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.CheckGeneral(cat); err != nil {
			log.Fatalf("%s violates the general graph: %v", rel.Name, err)
		}
	}
	fmt.Println("\nBoth object-specific lock graphs of Figure 5 validate against this general graph.")
}

func figure5() {
	header(`Figure 5: Object-Specific Lock Graph: Complex Relation "cells" and its Common Data ("effectors")`)
	cat := schema.PaperSchema()
	for _, rel := range []string{"cells", "effectors"} {
		g, err := core.DeriveGraph(cat, rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(g.Render())
		fmt.Println()
	}
}

func figure6() {
	header(`Figure 6: Complex Object "cell c1" of Relation "cells" (units, entry points, superunits)`)
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	u, err := core.ComputeUnits(st, nm, store.P("cells", "c1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Outer unit %q (%d nodes):\n", u.Object, len(u.OuterNodes))
	for _, n := range u.OuterNodes {
		fmt.Printf("  %s\n", n)
	}
	for _, iu := range u.Inner {
		fmt.Printf("\nInner unit %q (depth %d, %d nodes), referenced from:\n", iu.EntryPoint, iu.Depth, len(iu.Nodes))
		for _, r := range iu.ReferencedFrom {
			fmt.Printf("  o-> %s\n", r)
		}
		fmt.Printf("  superunit of %s:", iu.EntryPoint)
		for _, n := range iu.Superunit {
			fmt.Printf(" %s;", n)
		}
		fmt.Println()
	}
}

func figure7() {
	header(`Figure 7: Complex Object "c1" and the Locks held by the Queries Q2 and Q3`)
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	// The OnEvent hook is delivered outside the manager's shard latches, so
	// it can safely collect the acquisition trace while queries run.
	var events []lock.Event
	proto := core.NewProtocol(lock.NewManager(lock.Options{OnEvent: func(e lock.Event) {
		events = append(events, e)
	}}), st, nm, core.Options{
		Rule4Prime: true, Authorizer: auth,
	})
	mgr := txn.NewManager(proto, st)
	exec := query.NewExecutor(mgr, core.PlannerOptions{})

	tx2 := mgr.Begin()
	tx3 := mgr.Begin()
	auth.Grant(tx2.ID(), "cells")
	auth.Grant(tx3.ID(), "cells")
	if _, _, err := exec.Run(tx2, `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`); err != nil {
		log.Fatal(err)
	}
	if _, _, err := exec.Run(tx3, `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE`); err != nil {
		log.Fatal(err)
	}

	byRes := make(map[string][2]lock.Mode)
	for i, tx := range []*txn.Txn{tx2, tx3} {
		for _, h := range proto.Manager().HeldLocks(tx.ID()) {
			m := byRes[string(h.Resource)]
			m[i] = h.Mode
			byRes[string(h.Resource)] = m
		}
	}
	var resources []string
	for r := range byRes {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	fmt.Printf("%-40s %-8s %-8s\n", "lockable unit", "Q2", "Q3")
	for _, r := range resources {
		m := byRes[r]
		q2, q3 := "", ""
		if m[0] != lock.None {
			q2 = "Q2: " + m[0].String()
		}
		if m[1] != lock.None {
			q3 = "Q3: " + m[1].String()
		}
		depth := strings.Count(r, "/")
		fmt.Printf("%-40s %-8s %-8s\n", strings.Repeat(" ", depth)+r[strings.LastIndex(r, "/")+1:], q2, q3)
	}
	fmt.Println("\n(Q2 and Q3 both hold S on effector e2: rule 4' lets them run concurrently.)")

	fmt.Println("\nLock acquisition trace of Q2 (rule 5: ancestors root-to-leaf, common data first):")
	for _, e := range events {
		if e.Txn != tx2.ID() {
			continue
		}
		fmt.Printf("  %-8s %-4s %s\n", e.Kind, e.Mode, e.Resource)
	}
	tx2.Abort()
	tx3.Abort()
	if proto.Manager().LockCount() != 0 {
		fmt.Fprintln(os.Stderr, "warning: locks leaked")
	}
}
