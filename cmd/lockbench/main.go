// Command lockbench runs the quantitative experiments E1-E13 that turn the
// paper's qualitative evaluation (§4.6) into measurements (see DESIGN.md §5
// for the claim → experiment index):
//
//	lockbench              # run the full suite (EXPERIMENTS.md scale)
//	lockbench -quick       # small-scale smoke run
//	lockbench -e E3,E5     # run selected experiments (E1..E13)
//	lockbench -shardbench  # before/after sharded-table benchmark → BENCH_PR1.json
//	lockbench -obsbench    # collector-overhead + latency benchmark → BENCH_PR2.json
//	lockbench -tracebench  # span-tracing-overhead benchmark → BENCH_PR3.json
//	lockbench -hotbench    # fast-path speedup benchmark → BENCH_PR4.json
//	lockbench -stormbench  # contention-survival goodput benchmark → BENCH_PR6.json
//	lockbench -healthbench # health-monitor overhead + SLO storm → BENCH_PR7.json
//	lockbench -journalbench # durable-journal overhead benchmark → BENCH_PR8.json
//	lockbench -grantbench  # constant-time grant-path benchmark → BENCH_PR9.json
//	lockbench -netbench    # network lock-service loopback benchmark → BENCH_PR10.json
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"colock/internal/experiments"
	"colock/internal/metrics"
)

// experimentOrder lists the experiments in presentation order.
var experimentOrder = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}

// experimentRunners maps experiment ids to their runners (quick selects the
// small-scale parameterization).
func experimentRunners() map[string]func(quick bool) *metrics.Table {
	return map[string]func(quick bool) *metrics.Table{
		"E1": func(q bool) *metrics.Table {
			if q {
				return experiments.E1Fig7Concurrency(20)
			}
			return experiments.E1Fig7Concurrency(200)
		},
		"E2": func(q bool) *metrics.Table {
			if q {
				return experiments.E2Granularity(8, 50, 200*time.Microsecond)
			}
			return experiments.E2Granularity(16, 200, 500*time.Microsecond)
		},
		"E3": func(q bool) *metrics.Table {
			if q {
				return experiments.E3SharedXLock([]int{2, 8, 32})
			}
			return experiments.E3SharedXLock([]int{2, 8, 32, 128})
		},
		"E4": func(q bool) *metrics.Table {
			if q {
				return experiments.E4FromTheSide(10)
			}
			return experiments.E4FromTheSide(50)
		},
		"E5": func(q bool) *metrics.Table {
			if q {
				return experiments.E5Authorization([]int{4, 16}, 200*time.Microsecond)
			}
			return experiments.E5Authorization([]int{4, 16, 64}, 500*time.Microsecond)
		},
		"E6": func(q bool) *metrics.Table {
			if q {
				return experiments.E6Escalation(200, []float64{0.05, 0.25, 0.5, 1.0})
			}
			return experiments.E6Escalation(500, []float64{0.02, 0.1, 0.25, 0.5, 0.75, 1.0})
		},
		"E7": func(q bool) *metrics.Table {
			if q {
				return experiments.E7LongTransactions(8, 30*time.Millisecond)
			}
			return experiments.E7LongTransactions(16, 100*time.Millisecond)
		},
		"E8": func(q bool) *metrics.Table {
			if q {
				return experiments.E8DisjointOverhead(16, 4)
			}
			return experiments.E8DisjointOverhead(64, 6)
		},
		"E9": func(q bool) *metrics.Table {
			if q {
				return experiments.E9BenefitSweep([]int{1, 2, 3, 4}, 30*time.Millisecond)
			}
			return experiments.E9BenefitSweep([]int{1, 2, 3, 4, 5}, 60*time.Millisecond)
		},
		"E10": func(q bool) *metrics.Table {
			if q {
				return experiments.E10DeEscalation(8, 30*time.Millisecond)
			}
			return experiments.E10DeEscalation(16, 100*time.Millisecond)
		},
		"E11": func(q bool) *metrics.Table {
			if q {
				return experiments.E11BLUCoalescing(16)
			}
			return experiments.E11BLUCoalescing(64)
		},
		"E12": func(q bool) *metrics.Table {
			if q {
				return experiments.E12RecursiveClosure([]int{2, 8, 32})
			}
			return experiments.E12RecursiveClosure([]int{2, 8, 32, 128})
		},
		"E13": func(q bool) *metrics.Table {
			if q {
				return experiments.E13DeadlockPolicy(4, 15)
			}
			return experiments.E13DeadlockPolicy(8, 40)
		},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lockbench: ")
	quick := flag.Bool("quick", false, "run a small-scale suite")
	sel := flag.String("e", "", "comma-separated experiment ids (E1..E13); empty = all")
	shardbench := flag.Bool("shardbench", false, "run the sharded-lock-table before/after benchmark and write -shardout")
	shardout := flag.String("shardout", "BENCH_PR1.json", "output path for the -shardbench JSON report")
	obsbench := flag.Bool("obsbench", false, "run the observability-overhead benchmark and write -obsout")
	obsout := flag.String("obsout", "BENCH_PR2.json", "output path for the -obsbench JSON report")
	tracebench := flag.Bool("tracebench", false, "run the span-tracing-overhead benchmark and write -traceout")
	traceout := flag.String("traceout", "BENCH_PR3.json", "output path for the -tracebench JSON report")
	hotbench := flag.Bool("hotbench", false, "run the fast-path speedup benchmark and write -hotout")
	hotout := flag.String("hotout", "BENCH_PR4.json", "output path for the -hotbench JSON report")
	stormbench := flag.Bool("stormbench", false, "run the contention-survival goodput benchmark and write -stormout")
	stormout := flag.String("stormout", "BENCH_PR6.json", "output path for the -stormbench JSON report")
	healthbench := flag.Bool("healthbench", false, "run the health-monitor overhead benchmark and write -healthout")
	healthout := flag.String("healthout", "BENCH_PR7.json", "output path for the -healthbench JSON report")
	journalbench := flag.Bool("journalbench", false, "run the durable-journal overhead benchmark and write -journalout")
	journalout := flag.String("journalout", "BENCH_PR8.json", "output path for the -journalbench JSON report")
	grantbench := flag.Bool("grantbench", false, "run the constant-time grant-path benchmark and write -grantout")
	grantout := flag.String("grantout", "BENCH_PR9.json", "output path for the -grantbench JSON report")
	netbench := flag.Bool("netbench", false, "run the network lock-service loopback benchmark and write -netout")
	netout := flag.String("netout", "BENCH_PR10.json", "output path for the -netbench JSON report")
	flag.Parse()

	if *netbench {
		dur := 2 * time.Second
		conns := []int{1, 8, 32}
		if *quick {
			dur = 400 * time.Millisecond
			conns = []int{1, 4}
		}
		rep, err := writeNetBench(*netout, conns, dur, *quick)
		if err != nil {
			log.Fatalf("netbench: %v", err)
		}
		printNetBench(rep)
		fmt.Printf("report written to %s\n", *netout)
		return
	}

	if *grantbench {
		dur := 2 * time.Second
		workers := []int{1, 4, 16}
		allocIters := 20000
		if *quick {
			dur = 300 * time.Millisecond
			workers = []int{1, 4}
			allocIters = 2000
		}
		rep, err := writeGrantBench(*grantout, workers, dur, allocIters)
		if err != nil {
			log.Fatalf("grantbench: %v", err)
		}
		printGrantBench(rep)
		fmt.Printf("report written to %s\n", *grantout)
		return
	}

	if *journalbench {
		dur := 2 * time.Second
		workers := []int{1, 4, 16}
		if *quick {
			dur = 300 * time.Millisecond
			workers = []int{1, 4}
		}
		rep, err := writeJournalBench(*journalout, workers, dur)
		if err != nil {
			log.Fatalf("journalbench: %v", err)
		}
		printJournalBench(rep)
		fmt.Printf("report written to %s\n", *journalout)
		return
	}

	if *healthbench {
		dur := 2 * time.Second
		workers := []int{1, 4, 16}
		if *quick {
			dur = 300 * time.Millisecond
			workers = []int{1, 4}
		}
		rep, err := writeHealthBench(*healthout, workers, dur)
		if err != nil {
			log.Fatalf("healthbench: %v", err)
		}
		printHealthBench(rep)
		fmt.Printf("report written to %s\n", *healthout)
		return
	}

	if *stormbench {
		workers := []int{8, 32}
		dur := 2 * time.Second
		chaosWorkers, chaosTxns := 8, 25
		if *quick {
			workers = []int{4}
			dur = 300 * time.Millisecond
			chaosWorkers, chaosTxns = 4, 10
		}
		rep, err := writeStormBench(*stormout, workers, dur, chaosWorkers, chaosTxns)
		if err != nil {
			log.Fatalf("stormbench: %v", err)
		}
		printStormBench(rep)
		fmt.Printf("report written to %s\n", *stormout)
		return
	}

	if *hotbench {
		dur := 2 * time.Second
		workers := []int{1, 2, 4, 8, 16, 32}
		if *quick {
			dur = 300 * time.Millisecond
			workers = []int{1, 4}
		}
		rep, err := writeHotBench(*hotout, workers, dur)
		if err != nil {
			log.Fatalf("hotbench: %v", err)
		}
		printHotBench(rep)
		fmt.Printf("report written to %s\n", *hotout)
		return
	}

	if *tracebench {
		dur := 2 * time.Second
		if *quick {
			dur = 300 * time.Millisecond
		}
		rep, err := writeTraceBench(*traceout, []int{1, 4, 16}, dur)
		if err != nil {
			log.Fatalf("tracebench: %v", err)
		}
		printTraceBench(rep)
		fmt.Printf("report written to %s\n", *traceout)
		return
	}

	if *obsbench {
		dur := 2 * time.Second
		if *quick {
			dur = 300 * time.Millisecond
		}
		rep, err := writeObsBench(*obsout, []int{1, 4, 16}, dur)
		if err != nil {
			log.Fatalf("obsbench: %v", err)
		}
		printObsBench(rep)
		fmt.Printf("report written to %s\n", *obsout)
		return
	}

	if *shardbench {
		dur := 2 * time.Second
		if *quick {
			dur = 300 * time.Millisecond
		}
		rep, err := writeShardBench(*shardout, []int{1, 4, 16}, dur)
		if err != nil {
			log.Fatalf("shardbench: %v", err)
		}
		fmt.Printf("shardbench (GOMAXPROCS=%d, %d shards, %d locks/txn):\n",
			rep.GOMAXPROCS, rep.Shards, rep.LocksPerTxn)
		for _, r := range rep.Results {
			fmt.Printf("  %2d goroutines: before %12.0f ops/s   after %12.0f ops/s   speedup %.2fx\n",
				r.Goroutines, r.BeforeOpsPerSec, r.AfterOpsPerSec, r.Speedup)
		}
		fmt.Printf("report written to %s\n", *shardout)
		return
	}

	runners := experimentRunners()
	order := experimentOrder

	var ids []string
	if *sel == "" {
		ids = order
	} else {
		for _, id := range strings.Split(*sel, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := runners[id]; !ok {
				log.Fatalf("unknown experiment %q (have E1..E13)", id)
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tab := runners[id](*quick)
		fmt.Println(tab.String())
		fmt.Printf("(%s finished in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
