package main

// Durable-journal overhead benchmark: measures what attaching a
// journal.Writer (append-only segment journal fed by a bounded lock-free
// ring) costs on the shardbench workload. Emits machine-readable
// BENCH_PR8.json.
//
// Two baselines bound the claim:
//
//   - "bare": manager with no sinks vs manager with ONLY the journal. This
//     charges the journal for event materialization itself (the manager
//     builds a lock.Event only when a sink exists), the worst case.
//   - "collector": manager with the obs collector attached (colockshell's
//     always-on configuration) vs collector + journal. This is the marginal
//     cost of durability in a deployment that already observes events: one
//     ring push per event, the background goroutine does the encoding and
//     file I/O off the hot path.
//
// Both comparisons run at the deployed 1-in-64 operation sampling
// (EventSampleShift, the same configuration obsbench and healthbench
// measure): the journal persists the stream the manager emits, and the
// acceptance bar for the journal PR is ≤5% on the collector-relative row at
// that sampling. The ring never blocks the lock manager — when the disk
// can't keep up, records drop and are counted (the report includes the drop
// tally; forensics on an overloaded journal sees a gap, not a slow lock
// manager).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"colock/internal/journal"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/obs"
)

type journalOverheadResult struct {
	Goroutines       int     `json:"goroutines"`
	Baseline         string  `json:"baseline"` // "bare" or "collector"
	BaseOpsPerSec    float64 `json:"base_ops_per_sec"`
	JournalOpsPerSec float64 `json:"journal_ops_per_sec"`
	OverheadPct      float64 `json:"overhead_pct"`
}

type journalWriteStats struct {
	Records        uint64  `json:"records"`
	Accepted       uint64  `json:"accepted"`
	Dropped        uint64  `json:"dropped"`
	Bytes          int64   `json:"bytes"`
	Segments       uint64  `json:"segments"`
	BytesPerRecord float64 `json:"bytes_per_record"`
}

type journalBenchReport struct {
	Benchmark   string                  `json:"benchmark"`
	Description string                  `json:"description"`
	GOMAXPROCS  int                     `json:"gomaxprocs"`
	LocksPerTxn int                     `json:"locks_per_txn"`
	SampleShift uint8                   `json:"sample_shift"`
	Overhead    []journalOverheadResult `json:"overhead"`
	Writes      journalWriteStats       `json:"writes"`
}

// pairedOverhead runs the ABBA paired-slice comparison (shared-machine
// noise defense shared with obsbench: tightly paired slices, alternating
// order, median pair by ratio) and returns the median pair's rates.
func pairedOverhead(runBase, runJournal func() uint64, sliceDur time.Duration) (base, journaled float64, pct float64) {
	const pairs = 11
	runBase() // warmup
	runJournal()
	type pairObs struct{ b, j uint64 }
	obsPairs := make([]pairObs, 0, pairs)
	for i := 0; i < pairs; i++ {
		var p pairObs
		if i%2 == 0 {
			p.b = runBase()
			p.j = runJournal()
		} else {
			p.j = runJournal()
			p.b = runBase()
		}
		obsPairs = append(obsPairs, p)
	}
	sort.Slice(obsPairs, func(i, j int) bool {
		return float64(obsPairs[i].j)*float64(obsPairs[j].b) < float64(obsPairs[j].j)*float64(obsPairs[i].b)
	})
	mid := obsPairs[len(obsPairs)/2]
	secs := sliceDur.Seconds()
	base = float64(mid.b) / secs
	journaled = float64(mid.j) / secs
	if mid.b > 0 {
		pct = (1 - float64(mid.j)/float64(mid.b)) * 100
	}
	return base, journaled, pct
}

// runJournalBench measures journal overhead against both baselines at each
// worker count, then reports the final run's write-side statistics.
func runJournalBench(workerCounts []int, dur time.Duration) (*journalBenchReport, error) {
	rep := &journalBenchReport{
		Benchmark: "journalbench",
		Description: "lock acquire/release throughput without vs with the durable lock-event journal " +
			fmt.Sprintf("(1-in-%d operation sampling; %d disjoint X locks per transaction); ", 1<<obsSampleShift, locksPerTxn) +
			"baseline \"bare\" charges event materialization to the journal, " +
			"baseline \"collector\" measures the marginal cost over an attached obs collector",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		LocksPerTxn: locksPerTxn,
		SampleShift: obsSampleShift,
	}
	sliceDur := dur / 5
	var lastStatus journal.Status
	for _, w := range workerCounts {
		jdir, err := os.MkdirTemp("", "journalbench-*")
		if err != nil {
			return nil, err
		}
		jw, err := journal.Open(jdir, journal.Options{})
		if err != nil {
			os.RemoveAll(jdir)
			return nil, err
		}

		// Bare baseline: no sinks vs journal-only.
		mBare := lock.NewManager(lock.Options{})
		mJournal := lock.NewManager(lock.Options{
			Sinks:            []lock.EventSink{jw},
			EventSampleShift: obsSampleShift,
		})
		base, journaled, pct := pairedOverhead(
			func() uint64 { return runWorkers(w, sliceDur, txnShape(mBare)) },
			func() uint64 { return runWorkers(w, sliceDur, txnShape(mJournal)) },
			sliceDur)
		rep.Overhead = append(rep.Overhead, journalOverheadResult{
			Goroutines: w, Baseline: "bare",
			BaseOpsPerSec: base, JournalOpsPerSec: journaled, OverheadPct: pct,
		})

		// Collector baseline: collector vs collector + journal.
		mCol := lock.NewManager(lock.Options{
			Sinks:            []lock.EventSink{obs.NewCollector(obs.Options{RingSize: 256})},
			EventSampleShift: obsSampleShift,
		})
		mColJournal := lock.NewManager(lock.Options{
			Sinks:            []lock.EventSink{obs.NewCollector(obs.Options{RingSize: 256}), jw},
			EventSampleShift: obsSampleShift,
		})
		base, journaled, pct = pairedOverhead(
			func() uint64 { return runWorkers(w, sliceDur, txnShape(mCol)) },
			func() uint64 { return runWorkers(w, sliceDur, txnShape(mColJournal)) },
			sliceDur)
		rep.Overhead = append(rep.Overhead, journalOverheadResult{
			Goroutines: w, Baseline: "collector",
			BaseOpsPerSec: base, JournalOpsPerSec: journaled, OverheadPct: pct,
		})

		if err := jw.Close(); err != nil {
			os.RemoveAll(jdir)
			return nil, err
		}
		lastStatus = jw.Status()
		os.RemoveAll(jdir)
	}
	rep.Writes = journalWriteStats{
		Records:  lastStatus.Records,
		Accepted: lastStatus.Accepted,
		Dropped:  lastStatus.Dropped,
		Bytes:    lastStatus.Bytes,
		Segments: lastStatus.Segments,
	}
	if lastStatus.Records > 0 {
		rep.Writes.BytesPerRecord = float64(lastStatus.Bytes) / float64(lastStatus.Records)
	}
	return rep, nil
}

// writeJournalBench runs the benchmark and writes the JSON report to path.
func writeJournalBench(path string, workerCounts []int, dur time.Duration) (*journalBenchReport, error) {
	rep, err := runJournalBench(workerCounts, dur)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printJournalBench renders the report as console tables.
func printJournalBench(rep *journalBenchReport) {
	over := metrics.NewTable(
		fmt.Sprintf("Journal overhead (GOMAXPROCS=%d, 1-in-%d sampling)", rep.GOMAXPROCS, 1<<rep.SampleShift),
		"goroutines", "baseline", "base ops/s", "journal ops/s", "overhead")
	for _, r := range rep.Overhead {
		over.Addf(r.Goroutines, r.Baseline,
			fmt.Sprintf("%.0f", r.BaseOpsPerSec),
			fmt.Sprintf("%.0f", r.JournalOpsPerSec),
			metrics.Pct(r.OverheadPct/100))
	}
	fmt.Println(over.String())

	ws := metrics.NewTable("Journal write-side (final worker count)",
		"records", "accepted", "dropped", "bytes", "segments", "bytes/record")
	ws.Addf(rep.Writes.Records, rep.Writes.Accepted, rep.Writes.Dropped,
		rep.Writes.Bytes, rep.Writes.Segments, fmt.Sprintf("%.1f", rep.Writes.BytesPerRecord))
	fmt.Println(ws.String())
}
