package main

// Tracing overhead benchmark: measures what attaching a trace.Recorder to
// the protocol (span trees for 1-in-2^6 = 64 user-level lock calls) costs on
// a protocol-level workload, and proves the sampling was live by reporting
// the sampled-call and flight-recorder counters. Emits machine-readable
// BENCH_PR3.json.
//
// The acceptance bar for the tracing PR is ≤5% acquire-latency overhead at
// 1-in-64 sampling. The budget math mirrors obsbench: an unsampled call pays
// one atomic add in Recorder.Sample and a nil span handle through the
// protocol recursion; only the sampled 1-in-64 calls pay for resource
// naming, clock reads and span allocation, amortized 64x.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/store"
	"colock/internal/trace"
)

// traceSampleShift is the sampling exponent used for the enabled side:
// 1 in 2^6 = 64 user-level lock calls is traced.
const traceSampleShift = 6

// tracePathsPerTxn is the number of LockPath calls per benchmark
// transaction (the three effector objects of the paper database, in S so
// workers stay compatible and throughput is administration-bound).
const tracePathsPerTxn = 3

// traceOverheadResult is one worker-count row. The ops/sec columns are each
// side's best (least interfered-with) slice; OverheadPct is the median
// within-pair time ratio, which is what cancels machine-load drift — so the
// two throughput columns need not reproduce the overhead percentage exactly.
type traceOverheadResult struct {
	Goroutines        int     `json:"goroutines"`
	DisabledOpsPerSec float64 `json:"disabled_ops_per_sec"`
	EnabledOpsPerSec  float64 `json:"enabled_ops_per_sec"`
	OverheadPct       float64 `json:"overhead_pct"`
}

type traceBenchReport struct {
	Benchmark    string                `json:"benchmark"`
	Description  string                `json:"description"`
	GOMAXPROCS   int                   `json:"gomaxprocs"`
	PathsPerTxn  int                   `json:"paths_per_txn"`
	SampleShift  uint8                 `json:"sample_shift"`
	Overhead     []traceOverheadResult `json:"overhead"`
	SampledCalls uint64                `json:"sampled_calls"` // sampled roots on the enabled side
	SpanCount    uint64                `json:"span_count"`    // spans pushed to the flight recorder
}

// traceWorkload builds one side of the comparison: the paper database behind
// a protocol, optionally traced. The returned body runs one transaction
// (three S LockPaths, release, flush) and returns its op count.
func traceWorkload(rec *trace.Recorder) (func(id int) uint64, *lock.Manager) {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	opts := core.Options{}
	if rec != nil {
		opts.Tracer = rec
	}
	p := core.NewProtocol(mgr, st, nm, opts)
	paths := []store.Path{
		store.P("effectors", "e1"),
		store.P("effectors", "e2"),
		store.P("effectors", "e3"),
	}
	return func(id int) uint64 {
		txn := lock.TxnID(id + 1)
		for _, pa := range paths {
			p.LockPath(txn, pa, lock.S)
		}
		mgr.ReleaseAll(txn)
		if rec != nil {
			rec.FinishTxn(txn, "commit")
		}
		return tracePathsPerTxn
	}, mgr
}

// timeProtoWorkers runs a fixed amount of work — iters transactions on each
// of workers goroutines — and returns the wall time it took. Fixed work
// under a wall clock (instead of fixed time under an op counter) is what
// lets the min-time estimator below work: interference only ever adds time,
// so the fastest of many repetitions is the least contaminated measurement.
func timeProtoWorkers(workers, iters int, body func(id int) uint64) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				body(id)
			}
		}(i)
	}
	wg.Wait()
	return time.Since(start)
}

// runTraceBench measures tracing overhead at each worker count with the
// paired-ABBA slice discipline of obsbench, on fixed work: each slice times
// a constant number of transactions, each pair runs its two sides
// back-to-back (so machine-load drift divides out of the pair's time
// ratio), and the row reports the median pair ratio — the effect being
// measured (an atomic add plus a nil span handle per unsampled call, ~10ns
// against a ~µs LockPath) is far below shared-machine noise, so only a
// drift-cancelling, outlier-dropping estimator resolves it.
func runTraceBench(workerCounts []int, dur time.Duration) *traceBenchReport {
	rep := &traceBenchReport{
		Benchmark: "tracebench",
		Description: "protocol-level LockPath throughput without vs with a trace.Recorder " +
			fmt.Sprintf("(span trees for 1-in-%d user-level lock calls); ", 1<<traceSampleShift) +
			fmt.Sprintf("%d S LockPaths on the paper database's effector library per transaction", tracePathsPerTxn),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PathsPerTxn: tracePathsPerTxn,
		SampleShift: traceSampleShift,
	}
	// The bench heap is tiny, so at the default GOGC the enabled side's span
	// allocations trigger collections every few slices — a cost a real
	// deployment amortizes against its own (much larger) allocation rate.
	// Raise the target so GC fires at the explicit slice boundaries instead
	// of mid-measurement; both sides run under the same setting.
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	const pairs = 35
	sliceDur := dur / 12
	for _, w := range workerCounts {
		runDis, _ := traceWorkload(nil)
		rec := trace.NewRecorder(trace.Options{SampleShift: traceSampleShift})
		runEn, _ := traceWorkload(rec)
		// Calibrate the per-slice iteration count so a clean slice takes
		// about sliceDur, then hold the work fixed for every slice.
		const calIters = 2000
		calDur := timeProtoWorkers(w, calIters, runDis)
		iters := int(float64(calIters) * float64(sliceDur) / float64(calDur+1))
		if iters < calIters {
			iters = calIters
		}
		// The GC between slices keeps one slice's allocation debt from being
		// collected inside (and billed to) the next slice.
		dis := func() time.Duration { defer runtime.GC(); return timeProtoWorkers(w, iters, runDis) }
		en := func() time.Duration { defer runtime.GC(); return timeProtoWorkers(w, iters, runEn) }
		dis() // warmup
		en()
		ratios := make([]float64, 0, pairs)
		bestD, bestE := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < pairs; i++ {
			var d, e time.Duration
			if i%2 == 0 {
				d = dis()
				e = en()
			} else {
				e = en()
				d = dis()
			}
			ratios = append(ratios, float64(e)/float64(d))
			if d < bestD {
				bestD = d
			}
			if e < bestE {
				bestE = e
			}
		}
		sort.Float64s(ratios)
		median := ratios[len(ratios)/2]
		ops := float64(w) * float64(iters) * tracePathsPerTxn
		rep.Overhead = append(rep.Overhead, traceOverheadResult{
			Goroutines:        w,
			DisabledOpsPerSec: ops / bestD.Seconds(),
			EnabledOpsPerSec:  ops / bestE.Seconds(),
			OverheadPct:       (median - 1) * 100,
		})
		rep.SampledCalls += rec.SampledCalls()
		rep.SpanCount += rec.SpanCount()
	}
	return rep
}

// writeTraceBench runs the benchmark and writes the JSON report to path.
func writeTraceBench(path string, workerCounts []int, dur time.Duration) (*traceBenchReport, error) {
	rep := runTraceBench(workerCounts, dur)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printTraceBench renders the report as a console table.
func printTraceBench(rep *traceBenchReport) {
	over := metrics.NewTable(
		fmt.Sprintf("Tracing overhead (GOMAXPROCS=%d, 1-in-%d call sampling)", rep.GOMAXPROCS, 1<<rep.SampleShift),
		"goroutines", "untraced ops/s", "traced ops/s", "overhead")
	for _, r := range rep.Overhead {
		over.Addf(r.Goroutines,
			fmt.Sprintf("%.0f", r.DisabledOpsPerSec),
			fmt.Sprintf("%.0f", r.EnabledOpsPerSec),
			metrics.Pct(r.OverheadPct/100))
	}
	fmt.Println(over.String())
	fmt.Printf("sampled %d lock calls into %d flight-recorder spans\n", rep.SampledCalls, rep.SpanCount)
}
