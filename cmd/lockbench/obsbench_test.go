package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteObsBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeObsBench(path, []int{1, 2}, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Overhead) != 2 {
		t.Fatalf("overhead rows = %d, want 2", len(rep.Overhead))
	}
	for _, r := range rep.Overhead {
		if r.DisabledOpsPerSec <= 0 || r.EnabledOpsPerSec <= 0 {
			t.Errorf("non-positive throughput at %d goroutines: %+v", r.Goroutines, r)
		}
	}
	// The contended phase must produce real latency observations: every
	// acquire is recorded, and contention forces at least some waits.
	if rep.Acquire.Count == 0 {
		t.Error("contended phase recorded no acquire latencies")
	}
	if rep.Wait.Count == 0 {
		t.Error("contended phase recorded no wait latencies")
	}
	if rep.Hold.Count == 0 {
		t.Error("contended phase recorded no hold latencies")
	}
	if rep.Wait.P50NS <= 0 || rep.Wait.P99NS < rep.Wait.P50NS {
		t.Errorf("implausible wait quantiles: %+v", rep.Wait)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var round obsBenchReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if round.Benchmark != "obsbench" || round.SampleShift != obsSampleShift {
		t.Errorf("round-tripped report = %+v", round)
	}

	// The console renderer must not panic and must include the quantile
	// columns the issue asks for.
	printObsBench(rep)
}
