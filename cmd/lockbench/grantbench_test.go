package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A quick grantbench run must produce a well-formed report whose current
// side demonstrably exercised the summary fast path and whose deferred
// detector resolved a real cycle.
func TestGrantBenchQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeGrantBench(path, []int{2}, 100*time.Millisecond, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "grantbench" || rep.Residents != grantResidents {
		t.Errorf("report header = %q residents %d", rep.Benchmark, rep.Residents)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("result rows = %+v, want one hot_root_is and one convoy_x row", rep.Results)
	}
	for _, r := range rep.Results {
		if r.Goroutines != 2 || r.BaselineOpsPerSec <= 0 || r.CurrentOpsPerSec <= 0 || r.Speedup <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	if rep.SummaryFastChecks == 0 {
		t.Error("current side recorded no summary fast-path checks")
	}
	if !rep.DeadlockResolved {
		t.Error("deferred-detector probe did not resolve the AB-BA cycle")
	}
	if rep.DetectorRuns == 0 || rep.DeferredDetections == 0 {
		t.Errorf("detector not live: deferred=%d runs=%d", rep.DeferredDetections, rep.DetectorRuns)
	}
	if rep.BaselineBlockedAllocsPerOp <= 0 {
		t.Errorf("baseline blocked allocs/op = %v, want > 0", rep.BaselineBlockedAllocsPerOp)
	}
	if rep.BlockedAllocsPerOp >= rep.BaselineBlockedAllocsPerOp {
		t.Errorf("blocked path allocates as much as the baseline: current %.2f vs baseline %.2f",
			rep.BlockedAllocsPerOp, rep.BaselineBlockedAllocsPerOp)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed grantBenchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report file not JSON: %v", err)
	}
	if parsed.Benchmark != "grantbench" {
		t.Errorf("file benchmark = %q", parsed.Benchmark)
	}
}

var externalGrantBench = flag.String("grantbenchfile", "",
	"path to a grantbench JSON report to validate (used by `make grantbench-smoke`)")

// TestExternalGrantBenchFile validates a BENCH_PR9.json produced outside
// the test process — the `make grantbench-smoke` gate runs `lockbench
// -grantbench -quick` into a temp file and hands it in here. The smoke bar
// is ≥1.0x on every row and ≤1 alloc/op on the blocked path (the committed
// full run documents the ≥1.3x hot-root result; a loaded CI machine still
// must never measure the summary path as a slowdown). Skipped when no
// -grantbenchfile is given.
func TestExternalGrantBenchFile(t *testing.T) {
	if *externalGrantBench == "" {
		t.Skip("no -grantbenchfile given")
	}
	data, err := os.ReadFile(*externalGrantBench)
	if err != nil {
		t.Fatal(err)
	}
	var rep grantBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Benchmark != "grantbench" || len(rep.Results) == 0 {
		t.Fatalf("not a grantbench report: %+v", rep)
	}
	// The gate holds the hot-root rows — the scenario the summaries target —
	// to ≥1.0x. The convoy rows are informational: X handoff throughput is
	// dominated by scheduler wake latency and the manager's FIFO bookkeeping
	// (registry, arming, stats), and on a loaded single-CPU runner it can
	// measure below the lean replica; the convoy win this PR claims is the
	// allocation-free blocked path, gated below.
	hotRows := 0
	for _, r := range rep.Results {
		if r.Scenario != "hot_root_is" {
			continue
		}
		hotRows++
		if r.Speedup < 1.0 {
			t.Errorf("%s @%d goroutines: speedup %.2fx < 1.0x — summary grant path is a slowdown",
				r.Scenario, r.Goroutines, r.Speedup)
		}
	}
	if hotRows == 0 {
		t.Error("report has no hot_root_is rows")
	}
	if rep.BlockedAllocsPerOp > 1.0 {
		t.Errorf("blocked path allocs/op = %.2f, want <= 1.0", rep.BlockedAllocsPerOp)
	}
	if rep.SummaryFastChecks == 0 {
		t.Errorf("summary fast path not live: checks=%d", rep.SummaryFastChecks)
	}
	if !rep.DeadlockResolved || rep.DetectorRuns == 0 {
		t.Errorf("deferred detector not live: resolved=%v runs=%d", rep.DeadlockResolved, rep.DetectorRuns)
	}
}
