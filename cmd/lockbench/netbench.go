package main

// Network lock-service benchmark: measures what crossing the wire costs —
// the colockd/client path of DESIGN.md §16 against the same transaction
// loop run in-process — and emits machine-readable BENCH_PR10.json.
//
// Shape: an internal/server instance on a loopback port; 1/8/32
// connections, each driving netPipelineDepth concurrent Begin → K shared
// locks → Commit transactions through the client package (request-id
// pipelining is part of the protocol — one goroutine per transaction, all
// sharing the connection), so every lock is one request frame and one
// reply frame over TCP. Locks are taken with NOFOLLOW (§4.5): the acquire
// then measures the grant path itself rather than re-deriving the
// reference closure of the locked tuple on every transaction, and the
// in-process side uses the identical option, so the comparison stays
// apples-to-apples. The in-process side runs the identical loop against
// its own txn.Manager with the same goroutine count. Measurement
// discipline is the paired-ABBA slice: fixed work per slice, both sides
// back-to-back in alternating order, the row reports the median
// within-pair time ratio (local over net — how many times faster the
// in-process path is) plus each side's best-slice acquire throughput and
// the network side's per-acquire latency distribution (p50/p99 over every
// measured slice).
//
// The network layer adds no lock semantics and is excluded from the
// paper's request-count experiments (E1-E8); this benchmark quantifies the
// transport cost instead: loopback goodput and per-acquire latency.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"colock/client"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/server"
	"colock/internal/store"
	"colock/internal/txn"
)

// netLocksPerTxn is K: shared locks acquired per transaction, each a full
// round trip on the network side.
const netLocksPerTxn = 16

// netPipelineDepth is the number of transactions each connection keeps in
// flight concurrently, exercising the protocol's request-id pipelining.
const netPipelineDepth = 4

// netResult is one connection-count row.
type netResult struct {
	Connections int `json:"connections"`
	// NetAcquiresPerSec is the best-slice loopback goodput: client-observed
	// Lock calls per second across all connections.
	NetAcquiresPerSec   float64 `json:"net_acquires_per_sec"`
	LocalAcquiresPerSec float64 `json:"local_acquires_per_sec"`
	// LocalOverNetRatio is the median within-pair time ratio net/local: how
	// many times faster the in-process path runs the same transactions.
	LocalOverNetRatio float64 `json:"local_over_net_ratio"`
	// Per-acquire wire latency over every measured slice, microseconds.
	NetP50Micros float64 `json:"net_p50_micros"`
	NetP99Micros float64 `json:"net_p99_micros"`
}

type netBenchReport struct {
	Benchmark     string      `json:"benchmark"`
	Description   string      `json:"description"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Quick         bool        `json:"quick"`
	LocksPerTxn   int         `json:"locks_per_txn"`
	PipelineDepth int         `json:"pipeline_depth"`
	NoFollow      bool        `json:"nofollow"`
	Results       []netResult `json:"results"`
}

// netHarness is one live server plus a fresh in-process manager for the
// local side.
type netHarness struct {
	srv   *server.Server
	local *txn.Manager
}

func newNetHarness() (*netHarness, error) {
	build := func() *txn.Manager {
		st := store.PaperDatabase()
		nm := core.NewNamer(st.Catalog(), false)
		proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, core.Options{})
		return txn.NewManager(proto, st)
	}
	// Long lease: a benchmark stall must not expire sessions mid-slice.
	srv := server.New(build(), server.Options{Lease: time.Minute})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return &netHarness{srv: srv, local: build()}, nil
}

func (h *netHarness) close() { h.srv.Close() }

// runNetSlice drives iters transactions on each of conns×netPipelineDepth
// worker goroutines (netPipelineDepth pipelined transactions per
// connection) and returns the wall time. Per-acquire latencies are
// appended to each worker's sample slice when lats is non-nil.
func runNetSlice(clients []*client.Client, iters int, lats [][]float64) time.Duration {
	node := core.DataNode(store.P("cells", "c1"))
	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range clients {
		for d := 0; d < netPipelineDepth; d++ {
			wg.Add(1)
			go func(w int, c *client.Client) {
				defer wg.Done()
				for n := 0; n < iters; n++ {
					t, err := c.Begin(ctx)
					if err != nil {
						panic(err)
					}
					for k := 0; k < netLocksPerTxn; k++ {
						t0 := time.Now()
						if err := t.Lock(ctx, node, lock.S, client.WithNoFollow()); err != nil {
							panic(err)
						}
						if lats != nil {
							lats[w] = append(lats[w], float64(time.Since(t0).Microseconds()))
						}
					}
					if err := t.Commit(); err != nil {
						panic(err)
					}
				}
			}(i*netPipelineDepth+d, c)
		}
	}
	wg.Wait()
	return time.Since(start)
}

// runLocalSlice is the identical transaction loop against the in-process
// manager, with the same goroutine count (conns×netPipelineDepth) and the
// same NOFOLLOW acquires.
func runLocalSlice(tm *txn.Manager, conns, iters int) time.Duration {
	node := core.DataNode(store.P("cells", "c1"))
	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conns*netPipelineDepth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				t := tm.Begin()
				for k := 0; k < netLocksPerTxn; k++ {
					if err := t.Lock(ctx, node, lock.S, txn.WithNoFollow()); err != nil {
						panic(err)
					}
				}
				if err := t.Commit(); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// runNetBench measures every connection count with the paired-ABBA slice
// discipline.
func runNetBench(connCounts []int, dur time.Duration, quick bool) (*netBenchReport, error) {
	rep := &netBenchReport{
		Benchmark: "netbench",
		Description: "colockd wire-protocol loopback cost: Begin + NOFOLLOW shared locks + Commit, " +
			"pipelined transactions per connection, through internal/server and the client package vs " +
			"the identical loop on an in-process txn.Manager; local_over_net_ratio is the median " +
			"within-pair time ratio (in-process over network)",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         quick,
		LocksPerTxn:   netLocksPerTxn,
		PipelineDepth: netPipelineDepth,
		NoFollow:      true,
	}
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	pairs := 9
	if quick {
		pairs = 3
	}
	sliceDur := dur / 6
	for _, conns := range connCounts {
		h, err := newNetHarness()
		if err != nil {
			return nil, err
		}
		clients := make([]*client.Client, conns)
		for i := range clients {
			if clients[i], err = client.Dial(h.srv.Addr(), client.Options{}); err != nil {
				h.close()
				return nil, err
			}
		}

		// Calibrate iters on the slow (network) side so one slice lands near
		// sliceDur.
		const calIters = 20
		calDur := runNetSlice(clients, calIters, nil)
		iters := int(float64(calIters) * float64(sliceDur) / float64(calDur+1))
		if iters < calIters {
			iters = calIters
		}

		lats := make([][]float64, conns*netPipelineDepth)
		for i := range lats {
			lats[i] = make([]float64, 0, pairs*iters*netLocksPerTxn)
		}
		net := func(measure bool) time.Duration {
			defer runtime.GC()
			if measure {
				return runNetSlice(clients, iters, lats)
			}
			return runNetSlice(clients, iters, nil)
		}
		local := func() time.Duration { defer runtime.GC(); return runLocalSlice(h.local, conns, iters) }
		net(false) // warmup
		local()
		ratios := make([]float64, 0, pairs)
		bestNet, bestLocal := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < pairs; i++ {
			var n, l time.Duration
			if i%2 == 0 {
				n = net(true)
				l = local()
			} else {
				l = local()
				n = net(true)
			}
			ratios = append(ratios, float64(n)/float64(l))
			if n < bestNet {
				bestNet = n
			}
			if l < bestLocal {
				bestLocal = l
			}
		}
		sort.Float64s(ratios)
		var all []float64
		for _, s := range lats {
			all = append(all, s...)
		}
		sort.Float64s(all)
		acquires := float64(conns*netPipelineDepth) * float64(iters) * float64(netLocksPerTxn)
		rep.Results = append(rep.Results, netResult{
			Connections:         conns,
			NetAcquiresPerSec:   acquires / bestNet.Seconds(),
			LocalAcquiresPerSec: acquires / bestLocal.Seconds(),
			LocalOverNetRatio:   ratios[len(ratios)/2],
			NetP50Micros:        percentile(all, 0.50),
			NetP99Micros:        percentile(all, 0.99),
		})

		for _, c := range clients {
			c.Close()
		}
		h.close()
	}
	return rep, nil
}

// writeNetBench runs the benchmark and writes the JSON report to path.
func writeNetBench(path string, connCounts []int, dur time.Duration, quick bool) (*netBenchReport, error) {
	rep, err := runNetBench(connCounts, dur, quick)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printNetBench renders the report as a console table.
func printNetBench(rep *netBenchReport) {
	tab := metrics.NewTable(
		fmt.Sprintf("Network lock service vs in-process (GOMAXPROCS=%d, %d locks/txn, %d txns/conn pipelined, NOFOLLOW, loopback TCP)",
			rep.GOMAXPROCS, rep.LocksPerTxn, rep.PipelineDepth),
		"connections", "net acquires/s", "local acquires/s", "local/net", "net p50 µs", "net p99 µs")
	for _, r := range rep.Results {
		tab.Addf(r.Connections,
			fmt.Sprintf("%.0f", r.NetAcquiresPerSec),
			fmt.Sprintf("%.0f", r.LocalAcquiresPerSec),
			fmt.Sprintf("%.1fx", r.LocalOverNetRatio),
			fmt.Sprintf("%.0f", r.NetP50Micros),
			fmt.Sprintf("%.0f", r.NetP99Micros))
	}
	fmt.Println(tab.String())
}
