package main

// Storm benchmark: goodput under hot-key write contention, with and without
// the contention survival kit. Both sides run the identical workload — N
// goroutines each committing a fixed number of transactions that X-lock a
// 90%-hot key through the full protocol stack under wait-die — and differ
// only in how they react to an abort:
//
//   - bare:  abort and immediately begin again (the classic spin-restart
//     loop a naive client writes);
//   - kit:   txn.Manager.RunWithRetry with capped-exponential backoff plus
//     shed-mode admission control on Begin.
//
// On a saturated machine the bare side burns its cycles on begin/die churn
// — every spin steals CPU from the lock holder, stretching the very hold it
// is spinning on — while the kit parks losers in timers so the holder runs
// at full speed. Goodput is commits per second of wall time; the acceptance
// bar for this PR is kit/bare >= 1.5 at 32 goroutines.
//
// A second phase checks convergence under deterministic fault injection: a
// fixed-seed resilience.Chaos forces synthetic victims, timeouts and grant
// delays while every worker retries unboundedly; the run must commit every
// single transaction. Emits machine-readable BENCH_PR6.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/obs"
	"colock/internal/resilience"
	"colock/internal/store"
	"colock/internal/txn"
)

// stormHotPermille is the per-mille probability that a transaction writes
// the hot key (the rest spread over the cold leaves): the 90%-hot-key
// workload from the PR acceptance bar.
const stormHotPermille = 900

// stormStack is one side's fresh protocol stack over the paper database.
type stormStack struct {
	mgr *lock.Manager
	tm  *txn.Manager
}

func newStormStack() *stormStack {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{Policy: lock.PolicyWaitDie})
	p := core.NewProtocol(mgr, st, nm, core.Options{})
	return &stormStack{mgr: mgr, tm: txn.NewManager(p, st)}
}

// stormPaths returns the hot leaf and the cold leaf set of the workload.
func stormPaths() (store.Path, []store.Path) {
	hot := store.P("cells", "c1", "robots", "r1", "trajectory")
	cold := []store.Path{
		store.P("cells", "c1", "robots", "r2", "trajectory"),
		store.P("effectors", "e1", "tool"),
		store.P("effectors", "e2", "tool"),
		store.P("effectors", "e3", "tool"),
	}
	return hot, cold
}

// stormPick is a tiny deterministic per-worker LCG so both sides see the
// identical hot/cold request sequence for a given worker index.
type stormPick struct{ state uint64 }

func (p *stormPick) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return p.state >> 33
}

// stormSpin is a small fixed CPU burn standing in for the object update
// itself while the X lock is held.
func stormSpin() uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < 400; i++ {
		h = (h ^ uint64(i)) * 1099511628211
	}
	return h
}

var stormSink atomic.Uint64

// stormBody is the transaction body shared by both sides: a read statement,
// a scheduling point (client think time between statements — this is what
// makes transactions actually overlap), the X lock on the target, another
// think-time point while the lock is held, then the update burn. The yields
// model a client that doesn't run its whole transaction in one unbroken
// slice; they are what turns the hot key into a real storm.
func stormBody(tx *txn.Txn, read, target store.Path) error {
	if err := tx.LockPath(nil, read, lock.S); err != nil {
		return err
	}
	runtime.Gosched()
	if err := tx.LockPath(nil, target, lock.X); err != nil {
		return err
	}
	runtime.Gosched()
	stormSink.Add(stormSpin())
	return nil
}

// runStormBare runs the spin-restart side for roughly dur: each worker
// draws targets from its deterministic stream and restarts immediately on
// every abort. Returns committed transactions, total attempts, and the
// elapsed wall time (including the drain of in-flight commits after the
// deadline).
func runStormBare(s *stormStack, workers int, dur time.Duration) (uint64, uint64, time.Duration) {
	hot, cold := stormPaths()
	var commits, attempts atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := stormPick{state: uint64(w + 1)}
			for !stop.Load() {
				r := pick.next()
				target := hot
				if r%1000 >= stormHotPermille {
					target = cold[r%uint64(len(cold))]
				}
				read := cold[(r>>20)%uint64(len(cold))]
				for {
					attempts.Add(1)
					tx := s.tm.Begin()
					if err := stormBody(tx, read, target); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err == nil {
						commits.Add(1)
						break
					}
				}
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return commits.Load(), attempts.Load(), time.Since(start)
}

// runStormKit runs the survival-kit side for roughly dur: identical
// per-worker request streams, but each transaction goes through
// RunWithRetry with capped-exponential backoff, and the manager sheds
// Begins beyond a waiter depth of twice the core count. Returns committed
// transactions, the retry collector, and elapsed wall time.
func runStormKit(s *stormStack, workers int, dur time.Duration) (uint64, *obs.RetryCollector, time.Duration) {
	hot, cold := stormPaths()
	s.mgr.ConfigureAdmission(lock.AdmissionConfig{
		MaxWaiters: 2 * runtime.GOMAXPROCS(0),
		MaxDelay:   2 * time.Millisecond,
		Mode:       lock.AdmitShed,
	})
	defer s.mgr.ConfigureAdmission(lock.AdmissionConfig{})
	rc := obs.NewRetryCollector()
	var commits atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := stormPick{state: uint64(w + 1)}
			for !stop.Load() {
				r := pick.next()
				target := hot
				if r%1000 >= stormHotPermille {
					target = cold[r%uint64(len(cold))]
				}
				read := cold[(r>>20)%uint64(len(cold))]
				err := s.tm.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
					return stormBody(tx, read, target)
				},
					txn.WithMaxAttempts(0),
					txn.WithBackoff(resilience.CappedExponential{
						Base: 100 * time.Microsecond,
						Cap:  2 * time.Millisecond,
					}),
					txn.WithRetryObserver(rc))
				if err == nil {
					commits.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return commits.Load(), rc, time.Since(start)
}

// stormResult is one worker-count row of BENCH_PR6.json.
type stormResult struct {
	Goroutines            int     `json:"goroutines"`
	BareCommits           uint64  `json:"bare_commits"`
	KitCommits            uint64  `json:"kit_commits"`
	BareGoodput           float64 `json:"bare_goodput_commits_per_sec"`
	KitGoodput            float64 `json:"kit_goodput_commits_per_sec"`
	Ratio                 float64 `json:"kit_over_bare_ratio"`
	BareAttemptsPerCommit float64 `json:"bare_attempts_per_commit"`
	KitAttemptsPerCommit  float64 `json:"kit_attempts_per_commit"`
	KitSheds              uint64  `json:"kit_sheds"`
	KitAdmitDelays        uint64  `json:"kit_admit_delays"`
}

// stormChaosResult records the fault-injection convergence phase.
type stormChaosResult struct {
	Seed             int64   `json:"seed"`
	VictimRate       float64 `json:"victim_rate"`
	TimeoutRate      float64 `json:"timeout_rate"`
	DelayRate        float64 `json:"delay_rate"`
	Workers          int     `json:"workers"`
	TxnsPerWorker    int     `json:"txns_per_worker"`
	Commits          uint64  `json:"commits"`
	Failures         uint64  `json:"failures"`
	InjectedVictims  uint64  `json:"injected_victims"`
	InjectedTimeouts uint64  `json:"injected_timeouts"`
	InjectedDelays   uint64  `json:"injected_delays"`
	AttemptsPerTxn   float64 `json:"attempts_per_txn"`
	Converged        bool    `json:"converged"`
}

// stormBenchReport is the BENCH_PR6.json document.
type stormBenchReport struct {
	Benchmark   string           `json:"benchmark"`
	Description string           `json:"description"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	HotFraction float64          `json:"hot_fraction"`
	Policy      string           `json:"policy"`
	Results     []stormResult    `json:"results"`
	Chaos       stormChaosResult `json:"chaos"`
}

// runStormChaos is the convergence phase: a fixed-seed Chaos injector on a
// fresh stack, unbounded retries, and every transaction must commit.
func runStormChaos(workers, txns int) stormChaosResult {
	cfg := resilience.ChaosConfig{
		Seed:        42,
		VictimRate:  0.10,
		TimeoutRate: 0.05,
		DelayRate:   0.05,
		Delay:       200 * time.Microsecond,
	}
	s := newStormStack()
	chaos := resilience.NewChaos(cfg)
	s.mgr.SetInjector(chaos)
	defer s.mgr.SetInjector(nil)
	hot, cold := stormPaths()
	rc := obs.NewRetryCollector()
	var failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := stormPick{state: uint64(w + 1)}
			for c := 0; c < txns; c++ {
				r := pick.next()
				target := hot
				if r%1000 >= stormHotPermille {
					target = cold[r%uint64(len(cold))]
				}
				read := cold[(r>>20)%uint64(len(cold))]
				err := s.tm.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
					return stormBody(tx, read, target)
				},
					txn.WithMaxAttempts(0),
					txn.WithBackoff(resilience.CappedExponential{
						Base: 50 * time.Microsecond,
						Cap:  time.Millisecond,
					}),
					txn.WithRetryObserver(rc))
				if err != nil {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	cs := chaos.Stats()
	snap := rc.Attempts()
	res := stormChaosResult{
		Seed:             cfg.Seed,
		VictimRate:       cfg.VictimRate,
		TimeoutRate:      cfg.TimeoutRate,
		DelayRate:        cfg.DelayRate,
		Workers:          workers,
		TxnsPerWorker:    txns,
		Commits:          snap.Commits,
		Failures:         failures.Load(),
		InjectedVictims:  cs.Victims,
		InjectedTimeouts: cs.Timeouts,
		InjectedDelays:   cs.Delays,
		AttemptsPerTxn:   snap.Mean(),
	}
	res.Converged = res.Failures == 0 && res.Commits == uint64(workers*txns)
	return res
}

// runStormBench runs the duration-bound goodput comparison at each worker
// count (bare and kit back-to-back on fresh stacks, after a small warmup)
// plus the work-bound chaos convergence phase.
func runStormBench(workerCounts []int, dur time.Duration, chaosWorkers, chaosTxns int) *stormBenchReport {
	rep := &stormBenchReport{
		Benchmark: "stormbench",
		Description: "hot-key write-storm goodput: bare abort-and-spin restart vs RunWithRetry " +
			"with capped-exponential backoff plus shed-mode admission control, wait-die, " +
			"90% of transactions X-locking one hot leaf of the paper database",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		HotFraction: float64(stormHotPermille) / 1000,
		Policy:      "waitdie",
	}
	for _, w := range workerCounts {
		// Warmup both sides briefly to settle the allocator and scheduler.
		runStormBare(newStormStack(), w, dur/10)
		runStormKit(newStormStack(), w, dur/10)

		bareStack := newStormStack()
		bareCommits, bareAttempts, bareDur := runStormBare(bareStack, w, dur)
		kitStack := newStormStack()
		kitCommits, rc, kitDur := runStormKit(kitStack, w, dur)

		kitStats := kitStack.mgr.Stats()
		bareGood := float64(bareCommits) / bareDur.Seconds()
		kitGood := float64(kitCommits) / kitDur.Seconds()
		bareAtt := 0.0
		if bareCommits > 0 {
			bareAtt = float64(bareAttempts) / float64(bareCommits)
		}
		rep.Results = append(rep.Results, stormResult{
			Goroutines:            w,
			BareCommits:           bareCommits,
			KitCommits:            kitCommits,
			BareGoodput:           bareGood,
			KitGoodput:            kitGood,
			Ratio:                 kitGood / bareGood,
			BareAttemptsPerCommit: bareAtt,
			KitAttemptsPerCommit:  rc.Attempts().Mean(),
			KitSheds:              kitStats.Sheds,
			KitAdmitDelays:        kitStats.AdmitDelays,
		})
	}
	rep.Chaos = runStormChaos(chaosWorkers, chaosTxns)
	return rep
}

// writeStormBench runs the benchmark and writes the JSON report to path.
func writeStormBench(path string, workerCounts []int, dur time.Duration, chaosWorkers, chaosTxns int) (*stormBenchReport, error) {
	rep := runStormBench(workerCounts, dur, chaosWorkers, chaosTxns)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printStormBench renders the report as console tables.
func printStormBench(rep *stormBenchReport) {
	tab := metrics.NewTable(
		fmt.Sprintf("Write-storm goodput, %0.f%% hot key (GOMAXPROCS=%d, wait-die)",
			rep.HotFraction*100, rep.GOMAXPROCS),
		"goroutines", "bare commits/s", "kit commits/s", "ratio", "bare att/commit", "kit att/commit", "sheds")
	for _, r := range rep.Results {
		tab.Addf(r.Goroutines,
			fmt.Sprintf("%.0f", r.BareGoodput),
			fmt.Sprintf("%.0f", r.KitGoodput),
			fmt.Sprintf("%.2fx", r.Ratio),
			fmt.Sprintf("%.1f", r.BareAttemptsPerCommit),
			fmt.Sprintf("%.1f", r.KitAttemptsPerCommit),
			r.KitSheds)
	}
	fmt.Println(tab.String())
	c := rep.Chaos
	status := "CONVERGED"
	if !c.Converged {
		status = "DID NOT CONVERGE"
	}
	fmt.Printf("chaos(seed=%d victim=%.2f timeout=%.2f delay=%.2f): %d/%d commits, %d failures, "+
		"%.1f attempts/txn, injected %d victims %d timeouts %d delays — %s\n",
		c.Seed, c.VictimRate, c.TimeoutRate, c.DelayRate,
		c.Commits, c.Workers*c.TxnsPerWorker, c.Failures, c.AttemptsPerTxn,
		c.InjectedVictims, c.InjectedTimeouts, c.InjectedDelays, status)
}
