package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A quick netbench run must produce a well-formed report: a live server,
// real round trips, positive throughput on both sides and a sane latency
// distribution.
func TestNetBenchQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeNetBench(path, []int{1, 2}, 200*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "netbench" || rep.LocksPerTxn != netLocksPerTxn || rep.PipelineDepth != netPipelineDepth {
		t.Errorf("report header = %q locks/txn %d depth %d", rep.Benchmark, rep.LocksPerTxn, rep.PipelineDepth)
	}
	if !rep.NoFollow {
		t.Error("report does not declare the NOFOLLOW workload")
	}
	if len(rep.Results) != 2 {
		t.Fatalf("result rows = %+v, want rows for 1 and 2 connections", rep.Results)
	}
	for _, r := range rep.Results {
		if r.NetAcquiresPerSec <= 0 || r.LocalAcquiresPerSec <= 0 || r.LocalOverNetRatio <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
		if r.NetP50Micros <= 0 || r.NetP99Micros < r.NetP50Micros {
			t.Errorf("latency distribution inverted or empty: %+v", r)
		}
		// Crossing the wire must cost something: an in-process acquire has no
		// round trip, so a ratio at or below 1.0 means the harness measured
		// the wrong thing.
		if r.LocalOverNetRatio <= 1.0 {
			t.Errorf("connections=%d: local/net ratio %.2fx <= 1.0x — network side measured faster than in-process",
				r.Connections, r.LocalOverNetRatio)
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed netBenchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report file not JSON: %v", err)
	}
	if parsed.Benchmark != "netbench" {
		t.Errorf("file benchmark = %q", parsed.Benchmark)
	}
}

var externalNetBench = flag.String("netbenchfile", "",
	"path to a netbench JSON report to validate (used by `make netbench-smoke`)")

// TestExternalNetBenchFile validates a BENCH_PR10.json produced outside the
// test process — the `make netbench-smoke` gate runs `lockbench -netbench
// -quick` into a temp file and hands it in here. Structural checks apply to
// every report; the ISSUE's throughput bar (≥50k acquires/s at 32
// connections) is enforced only on full runs, because quick runs use
// smaller connection counts and slices. Skipped when no -netbenchfile is
// given.
func TestExternalNetBenchFile(t *testing.T) {
	if *externalNetBench == "" {
		t.Skip("no -netbenchfile given")
	}
	data, err := os.ReadFile(*externalNetBench)
	if err != nil {
		t.Fatal(err)
	}
	var rep netBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Benchmark != "netbench" || len(rep.Results) == 0 {
		t.Fatalf("not a netbench report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.NetAcquiresPerSec <= 0 || r.LocalAcquiresPerSec <= 0 || r.LocalOverNetRatio <= 1.0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	if rep.Quick {
		return
	}
	saw32 := false
	for _, r := range rep.Results {
		if r.Connections != 32 {
			continue
		}
		saw32 = true
		if r.NetAcquiresPerSec < 50_000 {
			t.Errorf("32 connections: %.0f acquires/s < 50k loopback goodput bar", r.NetAcquiresPerSec)
		}
	}
	if !saw32 {
		t.Error("full report has no 32-connection row")
	}
}
