package main

// Observability overhead benchmark: measures what attaching an
// obs.Collector (with per-operation sampling) costs on the shardbench
// workload, and reports acquire/wait/hold latency quantiles from a
// contended phase. Emits machine-readable BENCH_PR2.json.
//
// The acceptance bar for the telemetry PR is ≤5% acquire/release
// throughput regression with the collector enabled. The budget math: at
// GOMAXPROCS=1 an uncontended acquire/release pair costs ~750ns, so 5% is
// ~37ns/pair — far below the cost of stamping timestamps on every event.
// Sampling (EventSampleShift) keeps untraced operations down to one atomic
// load plus one counter add, and the sampled 1-in-2^k operations amortize
// the clock reads.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/obs"
)

// obsSampleShift is the sampling exponent used for the enabled side:
// 1 in 2^6 = 64 operations is traced.
const obsSampleShift = 6

type obsOverheadResult struct {
	Goroutines        int     `json:"goroutines"`
	DisabledOpsPerSec float64 `json:"disabled_ops_per_sec"`
	EnabledOpsPerSec  float64 `json:"enabled_ops_per_sec"`
	OverheadPct       float64 `json:"overhead_pct"`
}

type obsLatencySummary struct {
	Count uint64 `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P95NS int64  `json:"p95_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
}

func summarize(s obs.HistSnapshot) obsLatencySummary {
	return obsLatencySummary{
		Count: s.Count,
		P50NS: s.Quantile(0.50).Nanoseconds(),
		P95NS: s.Quantile(0.95).Nanoseconds(),
		P99NS: s.Quantile(0.99).Nanoseconds(),
		MaxNS: s.Max.Nanoseconds(),
	}
}

type obsBenchReport struct {
	Benchmark   string              `json:"benchmark"`
	Description string              `json:"description"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	LocksPerTxn int                 `json:"locks_per_txn"`
	SampleShift uint8               `json:"sample_shift"`
	Overhead    []obsOverheadResult `json:"overhead"`
	Acquire     obsLatencySummary   `json:"acquire_latency"`
	Wait        obsLatencySummary   `json:"wait_latency"`
	Hold        obsLatencySummary   `json:"hold_latency"`
}

// txnShape is the shardbench transaction body (locksPerTxn disjoint X
// locks, then release all) against a given manager.
func txnShape(m *lock.Manager) func(id int, rs []lock.Resource) {
	return func(id int, rs []lock.Resource) {
		txn := lock.TxnID(id + 1)
		for _, r := range rs {
			m.AcquireCtx(context.Background(), txn, r, lock.X)
		}
		m.ReleaseAll(txn)
	}
}

// benchContended drives a deliberately contended workload (many workers,
// a small hot resource set, short holds) through an unsampled collector so
// the wait histogram has real observations to report quantiles from.
func benchContended(workers int, dur time.Duration) *obs.Collector {
	col := obs.NewCollector(obs.Options{RingSize: -1})
	m := lock.NewManager(lock.Options{Sinks: []lock.EventSink{col}})
	hot := make([]lock.Resource, 4)
	for i := range hot {
		hot[i] = lock.Resource(fmt.Sprintf("hot/obj%d", i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			txn := lock.TxnID(id + 1)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				r := hot[(id+n)%len(hot)]
				if err := m.AcquireCtx(context.Background(), txn, r, lock.X); err != nil {
					continue // deadlock victim: retry with the next resource
				}
				// Yield while holding so other workers collide with the held
				// lock even under cooperative scheduling (GOMAXPROCS=1 would
				// otherwise rarely preempt inside the tiny hold window).
				runtime.Gosched()
				m.Release(txn, r)
			}
		}(i)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return col
}

// runObsBench measures collector overhead at each worker count and gathers
// contended-phase latency distributions.
func runObsBench(workerCounts []int, dur time.Duration) *obsBenchReport {
	rep := &obsBenchReport{
		Benchmark: "obsbench",
		Description: "lock acquire/release throughput without vs with an attached obs.Collector " +
			fmt.Sprintf("(1-in-%d operation sampling); %d disjoint X locks per transaction; ", 1<<obsSampleShift, locksPerTxn) +
			"latency quantiles from a separate contended phase with full tracing",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		LocksPerTxn: locksPerTxn,
		SampleShift: obsSampleShift,
	}
	// Shared machines make a single long measurement swing by ±15%, which
	// would drown the few-percent effect being measured. Three defenses:
	// each side's manager is built once per worker count (so per-slice
	// construction and map warmup never pollute a slice), the two sides run
	// as short tightly-paired slices in ABBA order (A,B then B,A) so
	// machine-load drift hits both sides of a pair equally, and the row
	// reports the median pair by overhead ratio — one descheduling burst
	// poisons one pair, not the whole measurement.
	const pairs = 11
	sliceDur := dur / 5
	for _, w := range workerCounts {
		md := lock.NewManager(lock.Options{})
		col := obs.NewCollector(obs.Options{RingSize: 256})
		me := lock.NewManager(lock.Options{
			Sinks:            []lock.EventSink{col},
			EventSampleShift: obsSampleShift,
		})
		runDis := func() uint64 { return runWorkers(w, sliceDur, txnShape(md)) }
		runEn := func() uint64 { return runWorkers(w, sliceDur, txnShape(me)) }
		runDis() // warmup
		runEn()
		type pairObs struct{ d, e uint64 }
		obsPairs := make([]pairObs, 0, pairs)
		for i := 0; i < pairs; i++ {
			var p pairObs
			if i%2 == 0 {
				p.d = runDis()
				p.e = runEn()
			} else {
				p.e = runEn()
				p.d = runDis()
			}
			obsPairs = append(obsPairs, p)
		}
		sort.Slice(obsPairs, func(i, j int) bool {
			return float64(obsPairs[i].e)*float64(obsPairs[j].d) < float64(obsPairs[j].e)*float64(obsPairs[i].d)
		})
		mid := obsPairs[len(obsPairs)/2]
		secs := sliceDur.Seconds()
		r := obsOverheadResult{
			Goroutines:        w,
			DisabledOpsPerSec: float64(mid.d) / secs,
			EnabledOpsPerSec:  float64(mid.e) / secs,
		}
		if mid.d > 0 {
			r.OverheadPct = (1 - float64(mid.e)/float64(mid.d)) * 100
		}
		rep.Overhead = append(rep.Overhead, r)
	}
	col := benchContended(8, dur)
	rep.Acquire = summarize(col.Aggregate(obs.OpAcquire))
	rep.Wait = summarize(col.Aggregate(obs.OpWait))
	rep.Hold = summarize(col.Aggregate(obs.OpHold))
	return rep
}

// writeObsBench runs the benchmark and writes the JSON report to path.
func writeObsBench(path string, workerCounts []int, dur time.Duration) (*obsBenchReport, error) {
	rep := runObsBench(workerCounts, dur)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printObsBench renders the report as console tables (overhead, then the
// p50/p95/p99 latency columns).
func printObsBench(rep *obsBenchReport) {
	over := metrics.NewTable(
		fmt.Sprintf("Collector overhead (GOMAXPROCS=%d, 1-in-%d sampling)", rep.GOMAXPROCS, 1<<rep.SampleShift),
		"goroutines", "disabled ops/s", "enabled ops/s", "overhead")
	for _, r := range rep.Overhead {
		over.Addf(r.Goroutines,
			fmt.Sprintf("%.0f", r.DisabledOpsPerSec),
			fmt.Sprintf("%.0f", r.EnabledOpsPerSec),
			metrics.Pct(r.OverheadPct/100))
	}
	fmt.Println(over.String())

	lat := metrics.NewTable("Latency quantiles (contended phase, full tracing)",
		"op", "count", "p50", "p95", "p99", "max")
	for _, row := range []struct {
		op string
		s  obsLatencySummary
	}{
		{"acquire", rep.Acquire}, {"wait", rep.Wait}, {"hold", rep.Hold},
	} {
		lat.Addf(row.op, row.s.Count,
			time.Duration(row.s.P50NS), time.Duration(row.s.P95NS),
			time.Duration(row.s.P99NS), time.Duration(row.s.MaxNS))
	}
	fmt.Println(lat.String())
}
