package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"colock/internal/lock"
)

func TestSeedManagerGrantRelease(t *testing.T) {
	m := newSeedManager()
	m.acquire(1, "a", lock.X)
	m.acquire(1, "b", lock.S)
	m.acquire(1, "a", lock.S) // covered regrant, no new entry
	if got := m.tableSize(); got != 2 {
		t.Errorf("tableSize = %d, want 2", got)
	}
	if m.maxTableSize != 2 {
		t.Errorf("maxTableSize = %d, want 2", m.maxTableSize)
	}
	m.releaseAll(1)
	if got := m.tableSize(); got != 0 {
		t.Errorf("tableSize after release = %d, want 0", got)
	}
	if len(m.res) != 0 || len(m.held) != 0 {
		t.Error("seed replica leaked entries")
	}
}

func TestWriteShardBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeShardBench(path, []int{1, 2}, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.BeforeOpsPerSec <= 0 || r.AfterOpsPerSec <= 0 {
			t.Errorf("non-positive throughput at %d goroutines: %+v", r.Goroutines, r)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var round shardBenchReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if round.Benchmark != "shardbench" || round.LocksPerTxn != locksPerTxn {
		t.Errorf("round-tripped report = %+v", round)
	}
}
