package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A quick tracebench run must produce a well-formed report whose enabled
// side demonstrably sampled calls into the flight recorder.
func TestTraceBenchQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeTraceBench(path, []int{2}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "tracebench" || rep.SampleShift != traceSampleShift {
		t.Errorf("report header = %q shift %d", rep.Benchmark, rep.SampleShift)
	}
	if len(rep.Overhead) != 1 || rep.Overhead[0].Goroutines != 2 {
		t.Fatalf("overhead rows = %+v, want one row for 2 goroutines", rep.Overhead)
	}
	row := rep.Overhead[0]
	if row.DisabledOpsPerSec <= 0 || row.EnabledOpsPerSec <= 0 {
		t.Errorf("zero throughput: %+v", row)
	}
	if rep.SampledCalls == 0 || rep.SpanCount == 0 {
		t.Errorf("enabled side traced nothing: sampled=%d spans=%d", rep.SampledCalls, rep.SpanCount)
	}
	// At shift 6 roughly 1 in 64 calls is sampled; each sampled LockPath
	// produces at least a root and an acquire span.
	if rep.SpanCount < rep.SampledCalls {
		t.Errorf("span count %d < sampled calls %d", rep.SpanCount, rep.SampledCalls)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed traceBenchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report file not JSON: %v", err)
	}
	if parsed.Benchmark != "tracebench" {
		t.Errorf("file benchmark = %q", parsed.Benchmark)
	}
}
