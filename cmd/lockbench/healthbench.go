package main

// Health-monitor overhead benchmark: measures what attaching an
// internal/health.Monitor as an event sink (with per-operation sampling)
// costs on the shardbench workload, then runs a contended wait-die storm
// with the monitor fully attached and reports the SLO burn-and-recover
// sequence plus the top contended resource the sketch ranked. Emits
// machine-readable BENCH_PR7.json.
//
// The acceptance bar for the health-monitor PR is ≤5% acquire/release
// throughput regression with the monitor attached at 1-in-64 sampling — the
// same bar and the same paired-slice methodology as obsbench: per-worker
// managers built once, ABBA-ordered slice pairs so machine-load drift hits
// both sides equally, and the median pair by ratio reported.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/health"
	"colock/internal/lock"
	"colock/internal/metrics"
)

type healthOverheadResult struct {
	Goroutines         int     `json:"goroutines"`
	BareOpsPerSec      float64 `json:"bare_ops_per_sec"`
	MonitoredOpsPerSec float64 `json:"monitored_ops_per_sec"`
	OverheadPct        float64 `json:"overhead_pct"`
}

type healthSLOSummary struct {
	Transitions   []string `json:"transitions"` // e.g. ["ok->warn","warn->critical","critical->ok"]
	FinalState    string   `json:"final_state"`
	WindowsClosed int      `json:"windows_closed"`
	StormAcquires uint64   `json:"storm_acquires"`
	StormAborts   uint64   `json:"storm_aborts"`
	TopResource   string   `json:"top_resource"`
	TopMode       string   `json:"top_mode"`
	TopCount      uint64   `json:"top_count"`
}

type healthBenchReport struct {
	Benchmark   string                 `json:"benchmark"`
	Description string                 `json:"description"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	LocksPerTxn int                    `json:"locks_per_txn"`
	SampleShift uint8                  `json:"sample_shift"`
	Overhead    []healthOverheadResult `json:"overhead"`
	SLO         healthSLOSummary       `json:"slo"`
}

// runHealthBench measures monitor overhead at each worker count, then runs
// the SLO storm phase.
func runHealthBench(workerCounts []int, dur time.Duration) *healthBenchReport {
	rep := &healthBenchReport{
		Benchmark: "healthbench",
		Description: "lock acquire/release throughput without vs with an attached health.Monitor " +
			fmt.Sprintf("(1-in-%d operation sampling); %d disjoint X locks per transaction; ", 1<<obsSampleShift, locksPerTxn) +
			"SLO burn-and-recover sequence from a separate contended wait-die storm with full tracing",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		LocksPerTxn: locksPerTxn,
		SampleShift: obsSampleShift,
	}
	const pairs = 11
	sliceDur := dur / 5
	for _, w := range workerCounts {
		mb := lock.NewManager(lock.Options{})
		mon := health.NewMonitor(health.Options{Window: time.Second})
		mm := lock.NewManager(lock.Options{
			Sinks:            []lock.EventSink{mon},
			EventSampleShift: obsSampleShift,
		})
		runBare := func() uint64 { return runWorkers(w, sliceDur, txnShape(mb)) }
		runMon := func() uint64 { return runWorkers(w, sliceDur, txnShape(mm)) }
		runBare() // warmup
		runMon()
		type pairObs struct{ b, m uint64 }
		obsPairs := make([]pairObs, 0, pairs)
		for i := 0; i < pairs; i++ {
			var p pairObs
			if i%2 == 0 {
				p.b = runBare()
				p.m = runMon()
			} else {
				p.m = runMon()
				p.b = runBare()
			}
			obsPairs = append(obsPairs, p)
		}
		sort.Slice(obsPairs, func(i, j int) bool {
			return float64(obsPairs[i].m)*float64(obsPairs[j].b) < float64(obsPairs[j].m)*float64(obsPairs[i].b)
		})
		mid := obsPairs[len(obsPairs)/2]
		secs := sliceDur.Seconds()
		r := healthOverheadResult{
			Goroutines:         w,
			BareOpsPerSec:      float64(mid.b) / secs,
			MonitoredOpsPerSec: float64(mid.m) / secs,
		}
		if mid.b > 0 {
			r.OverheadPct = (1 - float64(mid.m)/float64(mid.b)) * 100
		}
		rep.Overhead = append(rep.Overhead, r)
	}
	rep.SLO = healthStormPhase(8, dur)
	return rep
}

// healthStormPhase drives a hot-key wait-die storm with the monitor fully
// attached (no sampling) and walks the SLO machine through its burn-and-
// recover cycle on a manual window clock — the same condition-based phase
// gating the stress test uses: each storm phase runs until the live window
// provably breaches, then the window is closed with Advance.
func healthStormPhase(workers int, dur time.Duration) healthSLOSummary {
	start := time.Now()
	const win = time.Hour // manual clock: real time never crosses a boundary
	mgr := lock.NewManager(lock.Options{Policy: lock.PolicyWaitDie})
	mon := health.NewMonitor(health.Options{
		Window: win, Retain: 16, TopK: 8, Start: start,
		SLO:         health.SLO{MaxAbortRate: 0.05, WarnAfter: 1, CritAfter: 2, RecoverAfter: 2},
		WaiterDepth: mgr.WaitingTxns,
	})
	mgr.AttachSink(mon)
	var transitions []string
	var tmu sync.Mutex
	mon.OnTransition(func(tr health.Transition) {
		tmu.Lock()
		transitions = append(transitions, fmt.Sprintf("%s->%s", tr.From, tr.To))
		tmu.Unlock()
	})

	hot := lock.Resource("db1/seg1/cells/c1/robots/r1/trajectory")
	var txnSeq atomic.Uint64
	aborts := func(ws health.WindowStats) uint64 {
		return ws.Counts[health.RateVictims] + ws.Counts[health.RateWaitDie] + ws.Counts[health.RateTimeouts]
	}
	stormPhase := func() {
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					txn := lock.TxnID(txnSeq.Add(1))
					if err := mgr.AcquireCtx(context.Background(), txn, hot, lock.X); err != nil {
						mon.Retry("victim", 1) // wait-die death: the retry layer would re-run
						continue
					}
					runtime.Gosched() // hold across a scheduling point so workers collide
					mgr.ReleaseAll(txn)
				}
			}()
		}
		deadline := time.Now().Add(dur * 20)
		for {
			cur := mon.Current()
			if a := aborts(cur); a >= 200 && cur.AbortRate() >= 0.15 {
				break
			}
			if time.Now().After(deadline) {
				break // benchmark, not a test: report whatever happened
			}
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
		wg.Wait()
	}

	stormPhase()
	mon.Advance(start.Add(1 * win)) // → warn
	stormPhase()
	mon.Advance(start.Add(2 * win)) // → critical
	mon.Advance(start.Add(3 * win)) // hysteresis: still critical
	mon.Advance(start.Add(4 * win)) // → ok

	wins := mon.Windows(0)
	var sum healthSLOSummary
	sum.WindowsClosed = len(wins)
	for _, ws := range wins {
		sum.StormAcquires += ws.Counts[health.RateAcquires]
		sum.StormAborts += aborts(ws)
	}
	if top := mon.TopK(1); len(top) > 0 {
		sum.TopResource = string(top[0].Resource)
		sum.TopMode = top[0].Mode
		sum.TopCount = top[0].Count
	}
	sum.FinalState = mon.State().String()
	tmu.Lock()
	sum.Transitions = transitions
	tmu.Unlock()
	return sum
}

// writeHealthBench runs the benchmark and writes the JSON report to path.
func writeHealthBench(path string, workerCounts []int, dur time.Duration) (*healthBenchReport, error) {
	rep := runHealthBench(workerCounts, dur)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printHealthBench renders the report as console tables.
func printHealthBench(rep *healthBenchReport) {
	over := metrics.NewTable(
		fmt.Sprintf("Health-monitor overhead (GOMAXPROCS=%d, 1-in-%d sampling)", rep.GOMAXPROCS, 1<<rep.SampleShift),
		"goroutines", "bare ops/s", "monitored ops/s", "overhead")
	for _, r := range rep.Overhead {
		over.Addf(r.Goroutines,
			fmt.Sprintf("%.0f", r.BareOpsPerSec),
			fmt.Sprintf("%.0f", r.MonitoredOpsPerSec),
			metrics.Pct(r.OverheadPct/100))
	}
	fmt.Println(over.String())

	fmt.Printf("SLO storm: %d windows, %d acquires, %d aborts; transitions %v; final state %s\n",
		rep.SLO.WindowsClosed, rep.SLO.StormAcquires, rep.SLO.StormAborts,
		rep.SLO.Transitions, rep.SLO.FinalState)
	if rep.SLO.TopResource != "" {
		fmt.Printf("hottest resource: %s (%s) count=%d\n", rep.SLO.TopResource, rep.SLO.TopMode, rep.SLO.TopCount)
	}
}
