package main

// Shard benchmark: measures lock-manager throughput before/after the
// sharded-table redesign (PR "Sharded lock table with a context-aware
// Acquire API") and emits machine-readable BENCH_PR1.json.
//
// The "before" side is seedManager below — a frozen replica of the
// pre-sharding manager's uncontended hot path: one global mutex over the
// whole table, a per-txn held index under the same mutex, and (the real
// cost on a big table) MaxTableSize upkeep that walks every entry on every
// grant, exactly as the seed's grantLocked did via tableSize(). The "after"
// side is the live lock.Manager with its striped shards and O(1) atomic
// size/high-water counters.
//
// The workload models the protocol's locking pattern: each transaction
// acquires a chain of disjoint resources (ancestor spine + object locks),
// then releases everything at EOT.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"colock/internal/lock"
)

// seedHeld mirrors the seed's heldLock.
type seedHeld struct {
	mode lock.Mode
	seq  uint64
}

// seedEntry mirrors the seed's per-resource entry (queue omitted: the
// benchmark drives only uncontended grants, the common case both designs
// optimize).
type seedEntry struct {
	granted map[lock.TxnID]*seedHeld
}

// seedManager replicates the seed lock manager's grant/release path.
type seedManager struct {
	mu           sync.Mutex
	res          map[lock.Resource]*seedEntry
	held         map[lock.TxnID]map[lock.Resource]*seedHeld
	seq          uint64
	maxTableSize int
}

func newSeedManager() *seedManager {
	return &seedManager{
		res:  make(map[lock.Resource]*seedEntry),
		held: make(map[lock.TxnID]map[lock.Resource]*seedHeld),
	}
}

func (m *seedManager) tableSize() int {
	n := 0
	for _, e := range m.res {
		n += len(e.granted)
	}
	return n
}

// acquire grants mode on r to txn (uncontended path of the seed's acquire).
func (m *seedManager) acquire(txn lock.TxnID, r lock.Resource, mode lock.Mode) {
	m.mu.Lock()
	e := m.res[r]
	if e == nil {
		e = &seedEntry{granted: make(map[lock.TxnID]*seedHeld)}
		m.res[r] = e
	}
	h := e.granted[txn]
	if h != nil && h.mode.Covers(mode) {
		m.mu.Unlock()
		return
	}
	m.seq++
	if h == nil {
		h = &seedHeld{}
		e.granted[txn] = h
		tl := m.held[txn]
		if tl == nil {
			tl = make(map[lock.Resource]*seedHeld)
			m.held[txn] = tl
		}
		tl[r] = h
	}
	h.mode = mode
	h.seq = m.seq
	// The seed's grantLocked recomputed the table size on every grant to
	// maintain the MaxTableSize statistic — O(table) under the global mutex.
	if n := m.tableSize(); n > m.maxTableSize {
		m.maxTableSize = n
	}
	m.mu.Unlock()
}

func (m *seedManager) releaseAll(txn lock.TxnID) {
	m.mu.Lock()
	for r := range m.held[txn] {
		e := m.res[r]
		delete(e.granted, txn)
		if len(e.granted) == 0 {
			delete(m.res, r)
		}
	}
	delete(m.held, txn)
	m.mu.Unlock()
}

// shardBenchResult is one row of BENCH_PR1.json.
type shardBenchResult struct {
	Goroutines      int     `json:"goroutines"`
	BeforeOpsPerSec float64 `json:"before_ops_per_sec"`
	AfterOpsPerSec  float64 `json:"after_ops_per_sec"`
	Speedup         float64 `json:"speedup"`
	BeforeAcquires  uint64  `json:"before_acquires"`
	AfterAcquires   uint64  `json:"after_acquires"`
	DurationSecs    float64 `json:"duration_secs"`
}

// shardBenchReport is the BENCH_PR1.json document.
type shardBenchReport struct {
	Benchmark   string             `json:"benchmark"`
	Description string             `json:"description"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Shards      int                `json:"shards"`
	LocksPerTxn int                `json:"locks_per_txn"`
	Results     []shardBenchResult `json:"results"`
}

const locksPerTxn = 64

// benchBefore measures the seed-replica manager: workers acquire
// locksPerTxn disjoint X locks then release all, repeatedly, for dur.
func benchBefore(workers int, dur time.Duration) uint64 {
	m := newSeedManager()
	return runWorkers(workers, dur, func(id int, rs []lock.Resource) {
		txn := lock.TxnID(id + 1)
		for _, r := range rs {
			m.acquire(txn, r, lock.X)
		}
		m.releaseAll(txn)
	})
}

// benchAfter measures the sharded manager through the public AcquireCtx API.
func benchAfter(workers int, dur time.Duration) (uint64, int) {
	m := lock.NewManager(lock.Options{})
	n := runWorkers(workers, dur, func(id int, rs []lock.Resource) {
		txn := lock.TxnID(id + 1)
		for _, r := range rs {
			m.AcquireCtx(context.Background(), txn, r, lock.X)
		}
		m.ReleaseAll(txn)
	})
	return n, m.NumShards()
}

// runWorkers spins up `workers` goroutines each repeatedly running one
// transaction over its own disjoint working set until dur elapses, and
// returns the total number of acquire operations completed.
func runWorkers(workers int, dur time.Duration, txnBody func(id int, rs []lock.Resource)) uint64 {
	stop := make(chan struct{})
	counts := make([]uint64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		rs := make([]lock.Resource, locksPerTxn)
		for k := range rs {
			rs[k] = lock.Resource(fmt.Sprintf("w%d/obj%d", i, k))
		}
		wg.Add(1)
		go func(id int, rs []lock.Resource) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				txnBody(id, rs)
				counts[id] += locksPerTxn
			}
		}(i, rs)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// runShardBench runs the before/after comparison at the given worker counts
// and returns the report. dur is the measurement window per configuration.
func runShardBench(workerCounts []int, dur time.Duration) *shardBenchReport {
	rep := &shardBenchReport{
		Benchmark: "shardbench",
		Description: "lock acquire/release throughput: single-mutex seed replica " +
			"(with per-grant O(table) MaxTableSize walk) vs sharded table with atomic counters; " +
			fmt.Sprintf("%d disjoint X locks per transaction", locksPerTxn),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		LocksPerTxn: locksPerTxn,
	}
	for _, w := range workerCounts {
		// Warmup halves JIT-ish noise (map growth, scheduler spin-up).
		benchBefore(w, dur/4)
		before := benchBefore(w, dur)
		benchAfter(w, dur/4)
		after, shards := benchAfter(w, dur)
		rep.Shards = shards
		secs := dur.Seconds()
		r := shardBenchResult{
			Goroutines:      w,
			BeforeAcquires:  before,
			AfterAcquires:   after,
			BeforeOpsPerSec: float64(before) / secs,
			AfterOpsPerSec:  float64(after) / secs,
			DurationSecs:    secs,
		}
		if before > 0 {
			r.Speedup = float64(after) / float64(before)
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// writeShardBench runs the benchmark and writes the JSON report to path.
func writeShardBench(path string, workerCounts []int, dur time.Duration) (*shardBenchReport, error) {
	rep := runShardBench(workerCounts, dur)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}
