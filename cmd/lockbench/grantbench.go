package main

// Grant-path benchmark: measures what the PR-9 constant-time grant path —
// granted-group summaries, pooled wait blocks and deferred deadlock
// detection — buys over the pre-change scan-based path, and emits
// machine-readable BENCH_PR9.json.
//
// The "before" side is scanTable below — a frozen replica of the pre-PR9
// manager's grant decision: a per-resource granted MAP scanned holder by
// holder on every compatibility check, a waiter queue scanned end to end on
// every fairness check, and a freshly allocated waiter + ready channel for
// every blocked request. The replica is deliberately generous to the
// baseline: it omits the old inline-on-every-enqueue deadlock walk and its
// per-node map allocations, so the measured ratios UNDERSTATE the win under
// contention. The "after" side is the live lock.Manager.
//
// Two scenarios, per the paper's traffic shape:
//
//   - hot-root: the paper's hierarchy concentrates IS/IX traffic on DAG and
//     complex-object roots. grantResidents transactions park IS on one root;
//     workers then churn IS acquire/release against it. Every baseline
//     decision scans all resident holders; the new path answers from the
//     cached group mode in O(1).
//   - convoy: workers fight over one X-locked resource, so every request
//     blocks and every release hands the lock to a queued waiter — the
//     block-then-grant path the pooled wait blocks make allocation-free.
//
// Measurement discipline is hotbench's paired-ABBA slices: fixed work per
// slice, the two sides run back-to-back in alternating order, the row
// reports the median within-pair time ratio (machine-load drift divides
// out) plus each side's best-slice throughput.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"colock/internal/lock"
	"colock/internal/metrics"
)

// grantResidents is how many transactions sit on the hot root holding IS
// while the benchmark churns — the "dozens of concurrent readers on a
// coarse unit" regime the summaries are built for.
const grantResidents = 192

// ---- frozen pre-PR9 replica ------------------------------------------------

type scanHeld struct {
	mode lock.Mode
	seq  uint64
}

type scanWaiter struct {
	txn   lock.TxnID
	mode  lock.Mode
	ready chan struct{}
}

type scanEntry struct {
	granted map[lock.TxnID]*scanHeld
	queue   []*scanWaiter
}

// scanTable replicates the pre-PR9 grant path: map-scan compatibility,
// queue-scan fairness, heap-allocated wait blocks. One stripe suffices —
// both scenarios drive a single resource, so sharding is not what is being
// measured.
type scanTable struct {
	mu   sync.Mutex
	res  map[lock.Resource]*scanEntry
	held map[lock.TxnID]map[lock.Resource]struct{}
	seq  uint64
}

func newScanTable() *scanTable {
	return &scanTable{
		res:  make(map[lock.Resource]*scanEntry),
		held: make(map[lock.TxnID]map[lock.Resource]struct{}),
	}
}

// compatibleWithGranted is the seed's holder-by-holder scan.
func (e *scanEntry) compatibleWithGranted(txn lock.TxnID, mode lock.Mode) bool {
	for t, h := range e.granted {
		if t != txn && !mode.Compatible(h.mode) {
			return false
		}
	}
	return true
}

// hasBlockingQueue is the seed's end-to-end queue scan.
func (e *scanEntry) hasBlockingQueue(txn lock.TxnID, mode lock.Mode) bool {
	for _, w := range e.queue {
		if w.txn != txn && !mode.Compatible(w.mode) {
			return true
		}
	}
	return false
}

// grantLocked installs mode for txn on e, mirroring the seed's grant path
// (fresh heldLock allocation on first grant, per-txn held index upkeep).
func (m *scanTable) grantLocked(e *scanEntry, txn lock.TxnID, r lock.Resource, mode lock.Mode) {
	m.seq++
	h := e.granted[txn]
	if h == nil {
		h = &scanHeld{}
		e.granted[txn] = h
		tl := m.held[txn]
		if tl == nil {
			tl = make(map[lock.Resource]struct{})
			m.held[txn] = tl
		}
		tl[r] = struct{}{}
	}
	h.mode, h.seq = mode, m.seq
}

// acquire grants mode on r to txn, blocking on a freshly allocated wait
// block when the scan says no — the pre-change block-then-grant path. As in
// the seed, a blocked request is granted BY the releasing goroutine (FIFO
// handoff under the latch) and simply returns once its ready channel fires.
func (m *scanTable) acquire(txn lock.TxnID, r lock.Resource, mode lock.Mode) {
	m.mu.Lock()
	e := m.res[r]
	if e == nil {
		e = &scanEntry{granted: make(map[lock.TxnID]*scanHeld)}
		m.res[r] = e
	}
	if h := e.granted[txn]; h != nil && h.mode.Covers(mode) {
		m.mu.Unlock()
		return
	}
	if e.compatibleWithGranted(txn, mode) && !e.hasBlockingQueue(txn, mode) {
		m.grantLocked(e, txn, r, mode)
		m.mu.Unlock()
		return
	}
	w := &scanWaiter{txn: txn, mode: mode, ready: make(chan struct{}, 1)}
	e.queue = append(e.queue, w)
	m.mu.Unlock()
	<-w.ready // grant installed by the releaser's queue scan
}

// release drops txn's lock on r and grants the now-compatible FIFO prefix
// of the queue, as the seed's grantWaitersLocked did: scan front to back,
// grant and wake each compatible waiter, stop at the first blocked one.
func (m *scanTable) release(txn lock.TxnID, r lock.Resource) {
	m.mu.Lock()
	e := m.res[r]
	if e == nil {
		m.mu.Unlock()
		return
	}
	delete(e.granted, txn)
	if tl := m.held[txn]; tl != nil {
		delete(tl, r)
		if len(tl) == 0 {
			delete(m.held, txn)
		}
	}
	var woken []*scanWaiter
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !e.compatibleWithGranted(w.txn, w.mode) {
			break
		}
		e.queue = e.queue[1:]
		m.grantLocked(e, w.txn, r, w.mode)
		woken = append(woken, w)
	}
	if len(e.granted) == 0 && len(e.queue) == 0 {
		delete(m.res, r)
	}
	m.mu.Unlock()
	for _, w := range woken {
		w.ready <- struct{}{}
	}
}

// ---- scenarios -------------------------------------------------------------

// grantScenario is one benchmark shape: a setup returning (body, teardown)
// per side.
type grantScenario struct {
	name string
	// opsPerIter is how many grant-path operations one body call performs.
	opsPerIter int
	baseline   func(workers int) func(id int)
	current    func(workers int) func(id int)
}

// hotRootScenario: grantResidents IS holders parked on one root, workers
// churning IS acquire/release. Residents take the LOW txn IDs and the
// churning workers the high ones — TxnIDs are assigned monotonically in
// real use, so long-lived residents are always older than fresh arrivals.
func hotRootScenario() grantScenario {
	const root = lock.Resource("db1")
	return grantScenario{
		name:       "hot_root_is",
		opsPerIter: 2, // one acquire + one release
		baseline: func(workers int) func(id int) {
			tb := newScanTable()
			for i := 0; i < grantResidents; i++ {
				tb.acquire(lock.TxnID(i+1), root, lock.IS)
			}
			return func(id int) {
				txn := lock.TxnID(10000 + id)
				tb.acquire(txn, root, lock.IS)
				tb.release(txn, root)
			}
		},
		current: func(workers int) func(id int) {
			mgr := lock.NewManager(lock.Options{})
			for i := 0; i < grantResidents; i++ {
				if err := mgr.AcquireCtx(context.Background(), lock.TxnID(i+1), root, lock.IS); err != nil {
					panic(err)
				}
			}
			return func(id int) {
				txn := lock.TxnID(10000 + id)
				if err := mgr.AcquireCtx(context.Background(), txn, root, lock.IS); err != nil {
					panic(err)
				}
				mgr.Release(txn, root)
			}
		},
	}
}

// convoyScenario: every worker X-locks the same gate, so nearly every
// acquire blocks and every release performs a queued handoff.
func convoyScenario() grantScenario {
	const gate = lock.Resource("gate")
	return grantScenario{
		name:       "convoy_x",
		opsPerIter: 2,
		baseline: func(workers int) func(id int) {
			tb := newScanTable()
			return func(id int) {
				txn := lock.TxnID(id + 1)
				tb.acquire(txn, gate, lock.X)
				tb.release(txn, gate)
			}
		},
		current: func(workers int) func(id int) {
			mgr := lock.NewManager(lock.Options{})
			return func(id int) {
				txn := lock.TxnID(id + 1)
				// Retry on ErrDeadlock: under convoy churn the latch-local
				// detector can (rarely) pick a spurious victim; a real
				// application retries, so the benchmark does too.
				for {
					err := mgr.AcquireCtx(context.Background(), txn, gate, lock.X)
					if err == nil {
						break
					}
					if !errors.Is(err, lock.ErrDeadlock) {
						panic(err)
					}
				}
				mgr.Release(txn, gate)
			}
		},
	}
}

// ---- report ----------------------------------------------------------------

// grantResult is one (scenario, goroutines) row; Speedup is the median
// within-pair baseline/current time ratio.
type grantResult struct {
	Scenario          string  `json:"scenario"`
	Goroutines        int     `json:"goroutines"`
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	CurrentOpsPerSec  float64 `json:"current_ops_per_sec"`
	Speedup           float64 `json:"speedup"`
}

type grantBenchReport struct {
	Benchmark   string        `json:"benchmark"`
	Description string        `json:"description"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Residents   int           `json:"hot_root_residents"`
	Results     []grantResult `json:"results"`
	// Heap allocations per block-then-grant operation (two-goroutine X
	// ping-pong on one resource), via runtime.ReadMemStats Mallocs deltas.
	BlockedAllocsPerOp         float64 `json:"blocked_allocs_per_op"`
	BaselineBlockedAllocsPerOp float64 `json:"baseline_blocked_allocs_per_op"`
	// Grant-path counters from the current side, proving the fast path and
	// the deferred detector were live during the run.
	SummaryFastChecks  uint64 `json:"summary_fast_checks"`
	DeferredDetections uint64 `json:"deferred_detections"`
	DetectorRuns       uint64 `json:"detector_runs"`
	// DeadlockResolved is the end-to-end detector probe: a real AB-BA cycle
	// was constructed on the deferred path and its victim saw ErrDeadlock.
	DeadlockResolved bool `json:"deadlock_resolved"`
}

// timeGrantWorkers runs iters body calls on each of workers goroutines and
// returns the wall time (fixed work under a wall clock; see tracebench).
func timeGrantWorkers(workers, iters int, body func(id int)) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				body(id)
			}
		}(i)
	}
	wg.Wait()
	return time.Since(start)
}

// blockedAllocsPerOp measures heap allocations per block-then-grant
// operation: two goroutines ping-pong an X lock on one resource, so nearly
// every acquire parks and is granted by the other side's release. Each
// transaction also anchors an IS lock on a separate resource for the whole
// run — the paper's long check-out shape — so per-txn index churn is out of
// the picture and the measurement isolates the wait path itself.
func blockedAllocsPerOp(iters int) (current, baseline float64) {
	pingPong := func(acquire func(id int), warm, n int) float64 {
		run := func(k int) {
			var wg sync.WaitGroup
			for id := 0; id < 2; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for i := 0; i < k; i++ {
						acquire(id)
					}
				}(id)
			}
			wg.Wait()
		}
		run(warm)
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		run(n)
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(2*n)
	}

	mgr := lock.NewManager(lock.Options{})
	for id := 0; id < 2; id++ {
		anchor := lock.Resource(fmt.Sprintf("anchor-%d", id))
		if err := mgr.AcquireCtx(context.Background(), lock.TxnID(id+1), anchor, lock.IS); err != nil {
			panic(err)
		}
	}
	current = pingPong(func(id int) {
		txn := lock.TxnID(id + 1)
		for {
			err := mgr.AcquireCtx(context.Background(), txn, "pp", lock.X)
			if err == nil {
				break
			}
			if !errors.Is(err, lock.ErrDeadlock) {
				panic(err)
			}
		}
		mgr.Release(txn, "pp")
	}, iters/4, iters)

	tb := newScanTable()
	for id := 0; id < 2; id++ {
		tb.acquire(lock.TxnID(id+1), lock.Resource(fmt.Sprintf("anchor-%d", id)), lock.IS)
	}
	baseline = pingPong(func(id int) {
		txn := lock.TxnID(id + 1)
		tb.acquire(txn, "pp", lock.X)
		tb.release(txn, "pp")
	}, iters/4, iters)
	return current, baseline
}

// probeDeferredDetector constructs a real AB-BA deadlock on a
// deferred-detection manager and reports whether a victim saw ErrDeadlock,
// plus the manager's detector counters.
func probeDeferredDetector() (resolved bool, deferred, runs uint64) {
	mgr := lock.NewManager(lock.Options{DeadlockDefer: 200 * time.Microsecond})
	defer mgr.Close()
	ctx := context.Background()
	_ = mgr.AcquireCtx(ctx, 1, "da", lock.X)
	_ = mgr.AcquireCtx(ctx, 2, "db", lock.X)
	r1 := make(chan error, 1)
	go func() { r1 <- mgr.AcquireCtx(ctx, 1, "db", lock.X) }()
	time.Sleep(10 * time.Millisecond)
	err2 := mgr.AcquireCtx(ctx, 2, "da", lock.X)
	resolved = errors.Is(err2, lock.ErrDeadlock)
	mgr.ReleaseAll(2)
	if err := <-r1; err == nil {
		mgr.ReleaseAll(1)
	}
	st := mgr.Stats()
	return resolved, st.DeferredDetections, st.DetectorRuns
}

// runGrantBench measures both scenarios at each worker count with the
// paired-ABBA slice discipline, then the allocation and detector probes.
func runGrantBench(workerCounts []int, dur time.Duration, allocIters int) *grantBenchReport {
	rep := &grantBenchReport{
		Benchmark: "grantbench",
		Description: "lock-manager grant-path throughput with PR-9 granted-group summaries + pooled " +
			"wait blocks + deferred detection vs a frozen replica of the pre-change map-scan path; " +
			fmt.Sprintf("hot-root scenario churns IS under %d resident IS holders, convoy scenario X-convoys one resource", grantResidents),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Residents:  grantResidents,
	}
	// Tiny bench heap: let GC fire at the explicit slice boundaries rather
	// than mid-measurement (same rationale as hotbench/tracebench).
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	const pairs = 35
	sliceDur := dur / 12
	for _, sc := range []grantScenario{hotRootScenario(), convoyScenario()} {
		for _, w := range workerCounts {
			runBase := sc.baseline(w)
			runCur := sc.current(w)
			const calIters = 500
			calDur := timeGrantWorkers(w, calIters, runBase)
			iters := int(float64(calIters) * float64(sliceDur) / float64(calDur+1))
			if iters < calIters {
				iters = calIters
			}
			base := func() time.Duration { defer runtime.GC(); return timeGrantWorkers(w, iters, runBase) }
			cur := func() time.Duration { defer runtime.GC(); return timeGrantWorkers(w, iters, runCur) }
			base() // warmup
			cur()
			ratios := make([]float64, 0, pairs)
			bestB, bestC := time.Duration(1<<62), time.Duration(1<<62)
			for i := 0; i < pairs; i++ {
				var b, c time.Duration
				if i%2 == 0 {
					b = base()
					c = cur()
				} else {
					c = cur()
					b = base()
				}
				ratios = append(ratios, float64(b)/float64(c))
				if b < bestB {
					bestB = b
				}
				if c < bestC {
					bestC = c
				}
			}
			sort.Float64s(ratios)
			ops := float64(w) * float64(iters) * float64(sc.opsPerIter)
			rep.Results = append(rep.Results, grantResult{
				Scenario:          sc.name,
				Goroutines:        w,
				BaselineOpsPerSec: ops / bestB.Seconds(),
				CurrentOpsPerSec:  ops / bestC.Seconds(),
				Speedup:           ratios[len(ratios)/2],
			})
		}
	}

	rep.BlockedAllocsPerOp, rep.BaselineBlockedAllocsPerOp = blockedAllocsPerOp(allocIters)

	// Counter evidence: one more current-side hot-root burst on a fresh
	// manager, counted via Stats.
	mgr := lock.NewManager(lock.Options{})
	const root = lock.Resource("db1")
	for i := 0; i < grantResidents; i++ {
		_ = mgr.AcquireCtx(context.Background(), lock.TxnID(i+1), root, lock.IS)
	}
	for n := 0; n < 500; n++ {
		_ = mgr.AcquireCtx(context.Background(), 10000, root, lock.IS)
		mgr.Release(10000, root)
	}
	rep.SummaryFastChecks = mgr.Stats().SummaryFastChecks

	resolved, deferred, runs := probeDeferredDetector()
	rep.DeadlockResolved = resolved
	rep.DeferredDetections = deferred
	rep.DetectorRuns = runs
	return rep
}

// writeGrantBench runs the benchmark and writes the JSON report to path.
func writeGrantBench(path string, workerCounts []int, dur time.Duration, allocIters int) (*grantBenchReport, error) {
	rep := runGrantBench(workerCounts, dur, allocIters)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printGrantBench renders the report as a console table.
func printGrantBench(rep *grantBenchReport) {
	tab := metrics.NewTable(
		fmt.Sprintf("Grant-path speedup (GOMAXPROCS=%d, %d resident IS holders on the hot root)",
			rep.GOMAXPROCS, rep.Residents),
		"scenario", "goroutines", "baseline ops/s", "current ops/s", "speedup")
	for _, r := range rep.Results {
		tab.Addf(r.Scenario, r.Goroutines,
			fmt.Sprintf("%.0f", r.BaselineOpsPerSec),
			fmt.Sprintf("%.0f", r.CurrentOpsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	fmt.Println(tab.String())
	fmt.Printf("blocked path allocs/op: %.2f (baseline %.2f); summary fast checks %d; "+
		"deferred detections %d, detector runs %d, deadlock resolved %v\n",
		rep.BlockedAllocsPerOp, rep.BaselineBlockedAllocsPerOp, rep.SummaryFastChecks,
		rep.DeferredDetections, rep.DetectorRuns, rep.DeadlockResolved)
}
