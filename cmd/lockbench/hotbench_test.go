package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A quick hotbench run must produce a well-formed report whose fast side
// demonstrably exercised the granted-mode cache and the batched manager
// path.
func TestHotBenchQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeHotBench(path, []int{2}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "hotbench" || rep.PathsPerTxn != hotPathsPerTxn {
		t.Errorf("report header = %q paths/txn %d", rep.Benchmark, rep.PathsPerTxn)
	}
	if len(rep.Results) != 1 || rep.Results[0].Goroutines != 2 {
		t.Fatalf("result rows = %+v, want one row for 2 goroutines", rep.Results)
	}
	row := rep.Results[0]
	if row.BaselineOpsPerSec <= 0 || row.FastOpsPerSec <= 0 || row.Speedup <= 0 {
		t.Errorf("degenerate row: %+v", row)
	}
	if rep.FastPathHits == 0 {
		t.Error("fast side recorded no granted-mode cache hits")
	}
	if rep.BatchCalls == 0 {
		t.Error("fast side recorded no batched manager rounds")
	}
	if rep.BaselineAllocsPerOp <= 0 {
		t.Errorf("baseline allocs/op = %v, want > 0", rep.BaselineAllocsPerOp)
	}
	if rep.FastAllocsPerOp >= rep.BaselineAllocsPerOp {
		t.Errorf("fast path allocates as much as the baseline: fast %.2f vs baseline %.2f",
			rep.FastAllocsPerOp, rep.BaselineAllocsPerOp)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed hotBenchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report file not JSON: %v", err)
	}
	if parsed.Benchmark != "hotbench" {
		t.Errorf("file benchmark = %q", parsed.Benchmark)
	}
}

var externalHotBench = flag.String("hotbenchfile", "",
	"path to a hotbench JSON report to validate (used by `make hotbench-smoke`)")

// TestExternalHotBenchFile validates a BENCH_PR4.json produced outside the
// test process — the `make hotbench-smoke` gate runs `lockbench -hotbench
// -quick` into a temp file and hands it in here. The smoke bar is ≥1.0x on
// every row (the committed full run documents the ≥2x result; a loaded CI
// machine still must never measure the fast path as a slowdown). Skipped
// when no -hotbenchfile is given.
func TestExternalHotBenchFile(t *testing.T) {
	if *externalHotBench == "" {
		t.Skip("no -hotbenchfile given")
	}
	data, err := os.ReadFile(*externalHotBench)
	if err != nil {
		t.Fatal(err)
	}
	var rep hotBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Benchmark != "hotbench" || len(rep.Results) == 0 {
		t.Fatalf("not a hotbench report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.Speedup < 1.0 {
			t.Errorf("%d goroutines: speedup %.2fx < 1.0x — fast path is a slowdown", r.Goroutines, r.Speedup)
		}
	}
	if rep.FastPathHits == 0 || rep.BatchCalls == 0 {
		t.Errorf("fast path not live: hits=%d batches=%d", rep.FastPathHits, rep.BatchCalls)
	}
}
