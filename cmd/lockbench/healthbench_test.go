package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteHealthBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeHealthBench(path, []int{1, 2}, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Overhead) != 2 {
		t.Fatalf("overhead rows = %d, want 2", len(rep.Overhead))
	}
	for _, r := range rep.Overhead {
		if r.BareOpsPerSec <= 0 || r.MonitoredOpsPerSec <= 0 {
			t.Errorf("non-positive throughput at %d goroutines: %+v", r.Goroutines, r)
		}
	}
	// The storm phase must drive the full burn-and-recover cycle: the phase
	// gate waits for the live window to provably breach before closing it.
	want := []string{"ok->warn", "warn->critical", "critical->ok"}
	if len(rep.SLO.Transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", rep.SLO.Transitions, want)
	}
	for i, w := range want {
		if rep.SLO.Transitions[i] != w {
			t.Fatalf("transition %d = %q, want %q", i, rep.SLO.Transitions[i], w)
		}
	}
	if rep.SLO.FinalState != "ok" {
		t.Errorf("final state %q, want ok", rep.SLO.FinalState)
	}
	if rep.SLO.StormAborts == 0 || rep.SLO.StormAcquires == 0 {
		t.Errorf("empty storm: %+v", rep.SLO)
	}
	if rep.SLO.TopResource == "" || rep.SLO.TopMode != "X" {
		t.Errorf("sketch missed the hot key: %+v", rep.SLO)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var round healthBenchReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if round.Benchmark != "healthbench" || round.SampleShift != obsSampleShift {
		t.Errorf("round-tripped report = %+v", round)
	}
	printHealthBench(rep)
}

// healthBenchFile gates TestExternalHealthBenchFile: the Makefile
// healthbench target writes BENCH_PR7.json, then invokes this test to hold
// the report to the PR's acceptance bar.
var healthBenchFile = flag.String("healthbenchfile", "", "path to a BENCH_PR7.json to validate")

func TestExternalHealthBenchFile(t *testing.T) {
	if *healthBenchFile == "" {
		t.Skip("no -healthbenchfile flag; this test validates a written BENCH_PR7.json")
	}
	data, err := os.ReadFile(*healthBenchFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep healthBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Benchmark != "healthbench" || len(rep.Overhead) == 0 {
		t.Fatalf("not a healthbench report: %+v", rep)
	}
	// The PR's acceptance bar: ≤5% throughput regression with the monitor
	// attached at 1-in-64 sampling, at every measured concurrency.
	for _, r := range rep.Overhead {
		if r.OverheadPct > 5.0 {
			t.Errorf("overhead %.2f%% at %d goroutines exceeds the 5%% bar", r.OverheadPct, r.Goroutines)
		}
	}
	if rep.SLO.FinalState != "ok" || len(rep.SLO.Transitions) != 3 {
		t.Errorf("SLO cycle incomplete: %+v", rep.SLO)
	}
}
