package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A quick stormbench run must produce a well-formed report: both sides made
// progress, the retry layer actually retried on the contended workload, and
// the fixed-seed chaos phase committed every transaction.
func TestStormBenchQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := writeStormBench(path, []int{4}, 150*time.Millisecond, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "stormbench" || rep.HotFraction != 0.9 || rep.Policy != "waitdie" {
		t.Errorf("report header = %q hot %.2f policy %q", rep.Benchmark, rep.HotFraction, rep.Policy)
	}
	if len(rep.Results) != 1 || rep.Results[0].Goroutines != 4 {
		t.Fatalf("result rows = %+v, want one row for 4 goroutines", rep.Results)
	}
	row := rep.Results[0]
	if row.BareCommits == 0 || row.KitCommits == 0 {
		t.Errorf("a side made no progress: %+v", row)
	}
	if row.BareGoodput <= 0 || row.KitGoodput <= 0 || row.Ratio <= 0 {
		t.Errorf("degenerate row: %+v", row)
	}
	if row.KitAttemptsPerCommit < 1 {
		t.Errorf("kit attempts/commit = %v, want >= 1", row.KitAttemptsPerCommit)
	}
	c := rep.Chaos
	if !c.Converged {
		t.Errorf("chaos phase did not converge: %+v", c)
	}
	if c.Commits != uint64(c.Workers*c.TxnsPerWorker) || c.Failures != 0 {
		t.Errorf("chaos commits = %d failures = %d, want %d and 0",
			c.Commits, c.Failures, c.Workers*c.TxnsPerWorker)
	}
	if c.InjectedVictims+c.InjectedTimeouts+c.InjectedDelays == 0 {
		t.Error("chaos phase injected nothing")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed stormBenchReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report file not JSON: %v", err)
	}
	if parsed.Benchmark != "stormbench" {
		t.Errorf("file benchmark = %q", parsed.Benchmark)
	}
}

var externalStormBench = flag.String("stormbenchfile", "",
	"path to a stormbench JSON report to validate (used by `make stormbench-smoke`)")

// TestExternalStormBenchFile validates a BENCH_PR6.json produced outside
// the test process — the `make stormbench-smoke` gate runs `lockbench
// -stormbench -quick` into a temp file and hands it in here. The smoke bar
// is ratio ≥1.0 on every row (the committed full run documents the ≥1.5x
// result at 32 goroutines; a loaded CI machine still must never measure the
// survival kit as a slowdown) and a converged chaos phase. Skipped when no
// -stormbenchfile is given.
func TestExternalStormBenchFile(t *testing.T) {
	if *externalStormBench == "" {
		t.Skip("no -stormbenchfile given")
	}
	data, err := os.ReadFile(*externalStormBench)
	if err != nil {
		t.Fatal(err)
	}
	var rep stormBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Benchmark != "stormbench" || len(rep.Results) == 0 {
		t.Fatalf("not a stormbench report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.Ratio < 1.0 {
			t.Errorf("%d goroutines: kit/bare ratio %.2fx < 1.0x — the survival kit is a slowdown",
				r.Goroutines, r.Ratio)
		}
	}
	if !rep.Chaos.Converged {
		t.Errorf("chaos phase did not converge: %+v", rep.Chaos)
	}
}
