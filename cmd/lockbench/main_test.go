package main

import "testing"

func TestExperimentRegistryComplete(t *testing.T) {
	runners := experimentRunners()
	if len(runners) != len(experimentOrder) {
		t.Fatalf("registry has %d entries, order lists %d", len(runners), len(experimentOrder))
	}
	for _, id := range experimentOrder {
		if runners[id] == nil {
			t.Errorf("no runner for %s", id)
		}
	}
}

func TestFastRunnersProduceTables(t *testing.T) {
	runners := experimentRunners()
	for _, id := range []string{"E11", "E12"} {
		tab := runners[id](true)
		if tab == nil || len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}
