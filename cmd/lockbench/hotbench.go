package main

// Hot-path benchmark: measures what the PR-4 fast path — the per-transaction
// granted-mode cache, batched chain acquisition and the allocation-free
// namer — buys on a repeated-leaf protocol workload, against the same stack
// with the fast path disabled (DisableFastPath + Namer.DisableCache). Emits
// machine-readable BENCH_PR4.json.
//
// The acceptance bar for the fast-path PR is ≥2x single-goroutine speedup.
// Each benchmark transaction S-locks five hot leaves of the paper database
// hotRepeat times; the baseline walks the schema and the lock manager for
// every ancestor of every call, the fast side pays one batched manager round
// per chain and serves the repeats from the cache.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/store"
)

// hotRepeat is how many times each transaction revisits its leaf set — the
// "hot" in hotbench. 8 revisits of 5 leaves = 40 LockPaths per transaction.
const hotRepeat = 8

// hotLeafCount is the number of distinct leaves per revisit.
const hotLeafCount = 5

// hotPathsPerTxn is the number of LockPath calls per benchmark transaction.
const hotPathsPerTxn = hotRepeat * hotLeafCount

// hotResult is one worker-count row. The ops/sec columns are each side's
// best (least interfered-with) slice; Speedup is the median within-pair time
// ratio baseline/fast, which cancels machine-load drift — so the two
// throughput columns need not reproduce the speedup exactly.
type hotResult struct {
	Goroutines        int     `json:"goroutines"`
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	FastOpsPerSec     float64 `json:"fast_ops_per_sec"`
	Speedup           float64 `json:"speedup"`
}

type hotBenchReport struct {
	Benchmark   string      `json:"benchmark"`
	Description string      `json:"description"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	PathsPerTxn int         `json:"paths_per_txn"`
	Results     []hotResult `json:"results"`
	// Allocations per LockPath at one goroutine, measured via
	// runtime.ReadMemStats over a fixed single-threaded run.
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op"`
	FastAllocsPerOp     float64 `json:"fast_allocs_per_op"`
	// Fast-side evidence that the fast path was actually live.
	FastPathHits uint64 `json:"fast_path_hits"`
	BatchCalls   uint64 `json:"batch_calls"`
}

// hotWorkload builds one side of the comparison: the paper database behind a
// protocol, with the fast path either fully enabled (grant cache + name
// cache + batching) or fully disabled. The returned body runs one
// transaction — hotRepeat S-lock sweeps over five hot leaves, then release —
// and returns its op count.
func hotWorkload(fast bool) (func(id int) uint64, *lock.Manager, *core.Protocol) {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	var opts core.Options
	if !fast {
		nm.DisableCache()
		opts.DisableFastPath = true
	}
	mgr := lock.NewManager(lock.Options{})
	p := core.NewProtocol(mgr, st, nm, opts)
	paths := [hotLeafCount]store.Path{
		store.P("cells", "c1", "robots", "r1", "trajectory"),
		store.P("cells", "c1", "robots", "r2", "trajectory"),
		store.P("effectors", "e1", "tool"),
		store.P("effectors", "e2", "tool"),
		store.P("effectors", "e3", "tool"),
	}
	return func(id int) uint64 {
		txn := lock.TxnID(id + 1)
		for rep := 0; rep < hotRepeat; rep++ {
			for _, pa := range paths {
				p.LockPath(txn, pa, lock.S)
			}
		}
		mgr.ReleaseAll(txn)
		return hotPathsPerTxn
	}, mgr, p
}

// hotAllocsPerOp measures single-threaded heap allocations per LockPath for
// one side, by Mallocs delta over a fixed run.
func hotAllocsPerOp(fast bool) float64 {
	body, _, _ := hotWorkload(fast)
	const iters = 2000
	for i := 0; i < 50; i++ { // warm the caches and the allocator
		body(0)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		body(0)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters*hotPathsPerTxn)
}

// runHotBench measures the fast-path speedup at each worker count with the
// paired-ABBA slice discipline of tracebench, on fixed work: each slice
// times a constant number of transactions, each pair runs its two sides
// back-to-back (so machine-load drift divides out of the pair's time ratio),
// and the row reports the median pair ratio with best-slice throughput.
func runHotBench(workerCounts []int, dur time.Duration) *hotBenchReport {
	rep := &hotBenchReport{
		Benchmark: "hotbench",
		Description: "protocol-level LockPath throughput with the PR-4 fast path " +
			"(granted-mode cache + batched chain acquisition + name cache) vs the same stack disabled; " +
			fmt.Sprintf("%d repeated-leaf S LockPaths on the paper database per transaction", hotPathsPerTxn),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PathsPerTxn: hotPathsPerTxn,
	}
	// Same rationale as tracebench: the bench heap is tiny, so let GC fire at
	// the explicit slice boundaries instead of mid-measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	const pairs = 35
	sliceDur := dur / 12
	for _, w := range workerCounts {
		runBase, _, _ := hotWorkload(false)
		runFast, fastMgr, fastProto := hotWorkload(true)
		// Calibrate the per-slice iteration count so a clean slice takes
		// about sliceDur, then hold the work fixed for every slice.
		const calIters = 500
		calDur := timeProtoWorkers(w, calIters, runBase)
		iters := int(float64(calIters) * float64(sliceDur) / float64(calDur+1))
		if iters < calIters {
			iters = calIters
		}
		base := func() time.Duration { defer runtime.GC(); return timeProtoWorkers(w, iters, runBase) }
		fast := func() time.Duration { defer runtime.GC(); return timeProtoWorkers(w, iters, runFast) }
		base() // warmup
		fast()
		ratios := make([]float64, 0, pairs)
		bestB, bestF := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < pairs; i++ {
			var b, f time.Duration
			if i%2 == 0 {
				b = base()
				f = fast()
			} else {
				f = fast()
				b = base()
			}
			ratios = append(ratios, float64(b)/float64(f))
			if b < bestB {
				bestB = b
			}
			if f < bestF {
				bestF = f
			}
		}
		sort.Float64s(ratios)
		median := ratios[len(ratios)/2]
		ops := float64(w) * float64(iters) * hotPathsPerTxn
		rep.Results = append(rep.Results, hotResult{
			Goroutines:        w,
			BaselineOpsPerSec: ops / bestB.Seconds(),
			FastOpsPerSec:     ops / bestF.Seconds(),
			Speedup:           median,
		})
		rep.FastPathHits += fastProto.Stats().FastPathHits
		rep.BatchCalls += fastMgr.Stats().Batches
	}
	rep.BaselineAllocsPerOp = hotAllocsPerOp(false)
	rep.FastAllocsPerOp = hotAllocsPerOp(true)
	return rep
}

// writeHotBench runs the benchmark and writes the JSON report to path.
func writeHotBench(path string, workerCounts []int, dur time.Duration) (*hotBenchReport, error) {
	rep := runHotBench(workerCounts, dur)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// printHotBench renders the report as a console table.
func printHotBench(rep *hotBenchReport) {
	tab := metrics.NewTable(
		fmt.Sprintf("Fast-path speedup (GOMAXPROCS=%d, %d LockPaths/txn)", rep.GOMAXPROCS, rep.PathsPerTxn),
		"goroutines", "baseline ops/s", "fast ops/s", "speedup")
	for _, r := range rep.Results {
		tab.Addf(r.Goroutines,
			fmt.Sprintf("%.0f", r.BaselineOpsPerSec),
			fmt.Sprintf("%.0f", r.FastOpsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	fmt.Println(tab.String())
	fmt.Printf("allocs/op: baseline %.1f, fast %.1f; %d cache hits, %d batched manager rounds\n",
		rep.BaselineAllocsPerOp, rep.FastAllocsPerOp, rep.FastPathHits, rep.BatchCalls)
}
