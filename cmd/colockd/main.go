// Command colockd serves the paper's lock protocol over TCP: it wires a
// fully observable lock manager (collector, tracer, contention profile,
// incident writer, health monitor, optional durable journal) around the
// paper's example database and exposes it through internal/server's wire
// protocol (DESIGN.md §16). Remote clients dial with the client package,
// begin leased sessions, and run transactions with the exact semantics —
// rules 1-5, de-escalation, deadlock policies, admission control — an
// in-process caller gets.
//
//	$ colockd -addr 127.0.0.1:8029 -deadlock detect -obs 127.0.0.1:8023
//	colockd: serving lock protocol on 127.0.0.1:8029 (lease 5s)
//
// SIGINT/SIGTERM drains gracefully: new sessions and transactions are
// refused (retryably, so client retry loops fail over), in-flight
// transactions get -drain-timeout to finish, then remaining sessions are
// cut and their transactions aborted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"colock/internal/core"
	"colock/internal/health"
	"colock/internal/journal"
	"colock/internal/lock"
	"colock/internal/obs"
	"colock/internal/server"
	"colock/internal/store"
	"colock/internal/trace"
	"colock/internal/txn"
)

// service is the wired-up daemon state: everything between the TCP
// listener and the lock manager's shards.
type service struct {
	proto *core.Protocol
	tm    *txn.Manager
	col   *obs.Collector
	rec   *trace.Recorder
	prof  *trace.Profile
	iw    *trace.IncidentWriter
	mon   *health.Monitor
	jw    *journal.Writer
}

// newService builds the manager stack exactly like colockshell does —
// journal sink attached before the incident writer so a dump's trigger
// event is inside the offset it records, health monitor in the reset
// cascade, fast-path hits fanned to monitor and journal — so the obs
// endpoint, lockmon and colockreplay see network traffic identically to
// local traffic.
func newService(policy lock.Policy, incidentDir, journalDir string) (*service, error) {
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	kindOf := core.UnitKindOf(nm)
	col := obs.NewCollector(obs.Options{
		KindLabels: core.UnitKindLabels,
		KindOf:     kindOf,
	})
	mgr := lock.NewManager(lock.Options{
		Policy: policy,
		Sinks:  []lock.EventSink{col},
	})
	rec := trace.NewRecorder(trace.Options{
		ShardOf: mgr.ShardOf,
		KindOf: func(r lock.Resource) string {
			if k := kindOf(r); k >= 0 && k < len(core.UnitKindLabels) {
				return core.UnitKindLabels[k]
			}
			return "other"
		},
	})
	var jw *journal.Writer
	if journalDir != "" {
		var err error
		jw, err = journal.Open(journalDir, journal.Options{})
		if err != nil {
			return nil, err
		}
		mgr.AttachSink(jw)
	}
	prof := trace.NewProfile()
	incOpts := trace.IncidentOptions{}
	if jw != nil {
		incOpts.JournalOffset = jw.Offset
	}
	iw := trace.NewIncidentWriter(incidentDir, rec, mgr, incOpts)
	mgr.AttachSink(prof)
	mgr.AttachSink(iw)
	mon := health.NewMonitor(health.Options{
		Window: time.Second,
		Retain: 60,
		TopK:   32,
		SLO: health.SLO{
			MaxAbortRate:   0.05,
			MaxWaitP99:     250 * time.Millisecond,
			MaxWaiterDepth: 64,
		},
		WaiterDepth: mgr.WaitingTxns,
		GrantPath:   mgr.Stats,
	})
	mgr.AttachSink(mon)
	if jw != nil {
		mon.OnTransition(func(tr health.Transition) {
			jw.Note("health", fmt.Sprintf("%s->%s %s", tr.From, tr.To, tr.Reason))
		})
	}
	proto := core.NewProtocol(mgr, st, nm, core.Options{Tracer: rec})
	if jw != nil {
		proto.OnFastPathHit(func() {
			mon.RecordFastPathHit()
			jw.RecordFastPathHit()
		})
	} else {
		proto.OnFastPathHit(mon.RecordFastPathHit)
	}
	return &service{
		proto: proto,
		tm:    txn.NewManager(proto, st),
		col:   col,
		rec:   rec,
		prof:  prof,
		iw:    iw,
		mon:   mon,
		jw:    jw,
	}, nil
}

func parsePolicy(name string) (lock.Policy, error) {
	switch name {
	case "detect":
		return lock.PolicyDetect, nil
	case "waitdie":
		return lock.PolicyWaitDie, nil
	case "none":
		return lock.PolicyNone, nil
	}
	return lock.PolicyDetect, fmt.Errorf("unknown deadlock policy %q (detect, waitdie, none)", name)
}

func parseAdmitMode(name string) (lock.AdmissionMode, error) {
	switch name {
	case "shed":
		return lock.AdmitShed, nil
	case "degrade":
		return lock.AdmitDegrade, nil
	}
	return lock.AdmitShed, fmt.Errorf("unknown admission mode %q (shed, degrade)", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("colockd: ")
	addr := flag.String("addr", "127.0.0.1:8029", "address to serve the wire protocol on")
	deadlock := flag.String("deadlock", "detect", "deadlock policy: detect, waitdie or none")
	obsAddr := flag.String("obs", "", "serve the observability HTTP endpoint on this address (e.g. 127.0.0.1:8023)")
	incidents := flag.String("incidents", filepath.Join(os.TempDir(), "colockd-incidents"),
		"directory for deadlock/timeout incident dumps (JSONL)")
	journalDir := flag.String("journal", "",
		"directory for the durable lock-event journal (analyze offline with colockreplay)")
	lease := flag.Duration("lease", 5*time.Second,
		"session lease: a client missing this keepalive deadline has its transactions aborted")
	maxSessions := flag.Int("max-sessions", 0, "cap on concurrent sessions (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 64, "cap on concurrently executing requests per session")
	maxWaiters := flag.Int("max-waiters", 0,
		"admission gate: engage when this many transactions are parked in wait queues (0 = off)")
	admitDelay := flag.Duration("admit-delay", 50*time.Millisecond,
		"how long a new transaction may stall waiting for the storm to drain before being shed")
	admitMode := flag.String("admit-mode", "shed", "saturated-gate behavior: shed or degrade")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long graceful shutdown waits for in-flight transactions")
	pprofOn := flag.Bool("pprof", false,
		"expose net/http/pprof under /debug/pprof/ on the -obs endpoint")
	flag.Parse()

	policy, err := parsePolicy(*deadlock)
	if err != nil {
		log.Fatal(err)
	}
	mode, err := parseAdmitMode(*admitMode)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := newService(policy, *incidents, *journalDir)
	if err != nil {
		log.Fatal(err)
	}
	if svc.jw != nil {
		defer svc.jw.Close()
	}

	srv := server.New(svc.tm, server.Options{
		Lease:       *lease,
		MaxSessions: *maxSessions,
		MaxInflight: *maxInflight,
		Admission: lock.AdmissionConfig{
			MaxWaiters: *maxWaiters,
			MaxDelay:   *admitDelay,
			Mode:       mode,
		},
		Logf: log.Printf,
	})
	if err := srv.Serve(*addr); err != nil {
		log.Fatal(err)
	}

	if *obsAddr != "" {
		ts := &obs.TraceSources{
			Recorder:  svc.rec,
			Incidents: svc.iw,
			Profile:   svc.prof,
			Health:    svc.mon.Handler(),
			Pprof:     *pprofOn,
		}
		extras := []func(io.Writer){svc.proto.WriteMetrics, svc.mon.WriteMetrics, srv.WriteMetrics}
		if svc.jw != nil {
			ts.Journal = svc.jw.StatusHandler()
			extras = append(extras, svc.jw.WriteMetrics)
		}
		osrv, err := obs.Serve(*obsAddr, svc.proto.Manager(), svc.col, ts, extras...)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		log.Printf("observability endpoint on http://%s/ (/metrics, /queues, /dot, /health, /trace/...)", osrv.Addr())
	}
	log.Printf("incident dumps in %s", *incidents)
	if svc.jw != nil {
		log.Printf("journaling lock events to %s (colockreplay -dir %s)", *journalDir, *journalDir)
	}
	log.Printf("serving lock protocol on %s (lease %s, deadlock %s)", srv.Addr(), *lease, *deadlock)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("draining: refusing new sessions, waiting up to %s for in-flight transactions", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain timed out: remaining sessions cut, their transactions aborted (%v)", err)
	} else {
		log.Printf("drained cleanly")
	}
}
