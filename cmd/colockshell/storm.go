package main

// The contention-survival commands: .chaos installs a deterministic fault
// injector on the live lock manager, .storm runs a scripted hot-key
// contention storm through the retry layer and reports how many restarts a
// commit cost. Together they demo the resilience stack end to end: chaos
// faults surface as ordinary *LockError aborts, the Retrier classifies and
// re-runs them, and the attempts-per-commit histogram quantifies the price.

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"colock/internal/lock"
	"colock/internal/resilience"
	"colock/internal/store"
	"colock/internal/txn"
)

// chaosCmd handles `.chaos` / `.chaos off` / `.chaos victim=0.2 timeout=0.1
// delay=0.05 seed=42`.
func (s *shell) chaosCmd(arg string) {
	m := s.proto.Manager()
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		if s.chaos == nil {
			fmt.Fprintln(s.out, "chaos injection is off (.chaos victim=0.2 [timeout=0.1] [delay=0.05] [seed=42] to enable)")
			return
		}
		cs := s.chaos.Stats()
		fmt.Fprintf(s.out, "chaos on: %+v; injected so far: victims=%d timeouts=%d delays=%d\n",
			s.chaosCfg, cs.Victims, cs.Timeouts, cs.Delays)
		return
	}
	if fields[0] == "off" {
		m.SetInjector(nil)
		s.chaos = nil
		fmt.Fprintln(s.out, "chaos injection off")
		return
	}
	cfg := resilience.ChaosConfig{Seed: 1, Delay: time.Millisecond}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			fmt.Fprintf(s.out, "bad argument %q (want key=value)\n", f)
			return
		}
		switch k {
		case "victim", "timeout", "delay":
			rate, err := strconv.ParseFloat(v, 64)
			if err != nil || rate < 0 || rate > 1 {
				fmt.Fprintf(s.out, "bad rate %q (want 0..1)\n", v)
				return
			}
			switch k {
			case "victim":
				cfg.VictimRate = rate
			case "timeout":
				cfg.TimeoutRate = rate
			case "delay":
				cfg.DelayRate = rate
			}
		case "seed":
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				fmt.Fprintf(s.out, "bad seed %q\n", v)
				return
			}
			cfg.Seed = seed
		default:
			fmt.Fprintf(s.out, "unknown key %q (victim, timeout, delay, seed)\n", k)
			return
		}
	}
	s.chaos = resilience.NewChaos(cfg)
	s.chaosCfg = cfg
	m.SetInjector(s.chaos)
	fmt.Fprintf(s.out, "chaos on: %+v (every acquire may now be a synthetic victim/timeout/delay)\n", cfg)
}

// storm handles `.storm [workers] [rounds]`: a hot-key write storm on the
// cells/c1/robots/r1/trajectory leaf where every worker transaction runs
// through RunWithRetry with exponential backoff. The leaf keeps the conflict
// point deterministic — X-locking the whole cells/c1 object would propagate
// X to the referenced effectors (rules 3/4) and scatter the conflicts across
// the propagated locks. With `.chaos` active the storm also rides through
// synthetic faults. Results: wall time, goodput, and the retry collector's
// attempts-per-commit summary.
func (s *shell) storm(arg string) {
	if s.tx != nil && s.tx.State() == txn.Active {
		fmt.Fprintln(s.out, "finish the current transaction first (.commit or .abort)")
		return
	}
	workers, rounds := 8, 25
	fields := strings.Fields(arg)
	if len(fields) > 0 {
		if n, err := strconv.Atoi(fields[0]); err == nil && n > 0 {
			workers = n
		} else {
			fmt.Fprintf(s.out, "bad worker count %q\n", fields[0])
			return
		}
	}
	if len(fields) > 1 {
		if n, err := strconv.Atoi(fields[1]); err == nil && n > 0 {
			rounds = n
		} else {
			fmt.Fprintf(s.out, "bad round count %q\n", fields[1])
			return
		}
	}

	rc := s.retry
	rc.ResetStats()
	// Retries feed both the retry collector (attempts-per-commit summary)
	// and the health monitor's windowed retry rate.
	observer := resilience.Tee(rc, s.mon)
	hot := store.P("cells", "c1", "robots", "r1", "trajectory")
	m := s.proto.Manager()
	fmt.Fprintf(s.out, "-- storm: %d workers × %d rounds, X on %s, retry with capped-exponential backoff\n",
		workers, rounds, hot)

	var wg sync.WaitGroup
	var failures int
	var failMu sync.Mutex
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				err := s.mgr.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
					if s.prime {
						s.auth.Grant(tx.ID(), "cells")
					}
					if err := tx.LockPath(nil, hot, lock.X); err != nil {
						return err
					}
					// Hold the hot lock across a scheduling point so the
					// workers genuinely collide (otherwise each txn is a few
					// microseconds and the storm serializes by accident).
					runtime.Gosched()
					return nil
				},
					txn.WithMaxAttempts(0), // unlimited: converge, whatever chaos does
					txn.WithBackoff(resilience.CappedExponential{
						Base: 200 * time.Microsecond, Cap: 5 * time.Millisecond,
					}),
					txn.WithRetryObserver(observer))
				if err != nil {
					failMu.Lock()
					failures++
					failMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := rc.Attempts()
	fmt.Fprintf(s.out, "-- %d commits, %d failures in %v (%.0f commits/s)\n",
		snap.Commits, failures, elapsed.Round(time.Millisecond),
		float64(snap.Commits)/elapsed.Seconds())
	fmt.Fprintf(s.out, "-- retry summary: %s\n", rc)
	st := m.Stats()
	if st.InjectedFaults > 0 || st.Sheds > 0 {
		fmt.Fprintf(s.out, "-- survival kit: injected-faults=%d sheds=%d admit-delays=%d degraded-acquires=%d\n",
			st.InjectedFaults, st.Sheds, st.AdmitDelays, st.DegradedAcquires)
	}
}
