package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"colock/internal/lock"
	"colock/internal/obs"
)

func TestShellMetrics(t *testing.T) {
	s, buf := newTestShell(t, true)
	runScript(t, s,
		`SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`,
		`.metrics`,
		`.commit`,
		`.quit`,
	)
	out := buf.String()
	for _, want := range []string{
		"Lock-manager counters",
		"requests",
		"Protocol rule applications",
		"downward propagations (3/4)",
		"rule 4' weakened to S",
		"Latencies by op, mode and unit kind",
		"p50", "p95", "p99",
		"acquire",
		"entry-point", // rule-4' S locks on the effectors classify as entry points
	} {
		if !strings.Contains(out, want) {
			t.Errorf(".metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestShellQueues(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`SELECT c FROM c IN cells WHERE c.cell_id = 'c1' FOR READ`,
		`.queues`,
		`.queues all`,
		`.commit`,
		`.quit`,
	)
	out := buf.String()
	if !strings.Contains(out, "no contended resources") {
		t.Errorf(".queues without contention should say so:\n%s", out)
	}
	if !strings.Contains(out, "db1/seg1/cells/c1") || !strings.Contains(out, "granted txn") {
		t.Errorf(".queues all should list held locks:\n%s", out)
	}
}

// Forced two-transaction deadlock: the shell runs with -deadlock none, two
// background transactions drive the lock manager directly into a cycle, and
// .dot must emit well-formed DOT naming the victim edge.
func TestShellDotDeadlock(t *testing.T) {
	s, buf := newTestShellPolicy(t, false, lock.PolicyNone)
	m := s.proto.Manager()

	a, b := lock.Resource("db1/seg1/cells/c1"), lock.Resource("db1/seg2/effectors/e1")
	if err := m.AcquireCtx(context.Background(), 101, a, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 102, b, lock.X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.AcquireCtx(context.Background(), 101, b, lock.X) }()
	go func() { errs <- m.AcquireCtx(context.Background(), 102, a, lock.X) }()
	for i := 0; m.WaitingTxns() < 2; i++ {
		if i > 2000 {
			t.Fatal("deadlock never formed")
		}
		time.Sleep(time.Millisecond)
	}

	runScript(t, s, `.dot`, `.quit`)
	out := buf.String()
	start := strings.Index(out, "digraph")
	end := strings.Index(out, "}\n")
	if start < 0 || end < start {
		t.Fatalf("no DOT graph in output:\n%s", out)
	}
	dot := out[start : end+2]
	if err := obs.ValidateDOT(dot); err != nil {
		t.Fatalf(".dot output fails the DOT grammar check: %v\n%s", err, dot)
	}
	if !strings.Contains(dot, "(victim)") {
		t.Errorf(".dot must mark the victim transaction:\n%s", dot)
	}
	if !strings.Contains(dot, `(victim edge)`) || !strings.Contains(dot, "t102 -> t101") {
		t.Errorf(".dot must name the victim edge t102 -> t101:\n%s", dot)
	}

	// Resolve by hand so the goroutines exit.
	m.ReleaseAll(102)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(101)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestShellDotEmpty(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s, `.dot`, `.quit`)
	out := buf.String()
	start := strings.Index(out, "digraph")
	if start < 0 {
		t.Fatalf("no DOT graph:\n%s", out)
	}
	end := strings.Index(out, "}\n")
	if err := obs.ValidateDOT(out[start : end+2]); err != nil {
		t.Errorf("empty .dot invalid: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]lock.Policy{
		"detect": lock.PolicyDetect, "waitdie": lock.PolicyWaitDie, "none": lock.PolicyNone,
	} {
		got, err := parsePolicy(name)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("parsePolicy(bogus) should fail")
	}
}
