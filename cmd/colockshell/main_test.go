package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"colock/internal/lock"
)

func newTestShell(t *testing.T, prime bool) (*shell, *bytes.Buffer) {
	t.Helper()
	return newTestShellPolicy(t, prime, lock.PolicyDetect)
}

func newTestShellPolicy(t *testing.T, prime bool, policy lock.Policy) (*shell, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	s, err := newShell(prime, policy, t.TempDir(), "", bufio.NewWriter(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return s, &buf
}

func runScript(t *testing.T, s *shell, lines ...string) string {
	t.Helper()
	in := bufio.NewScanner(strings.NewReader(strings.Join(lines, "\n")))
	s.repl(in)
	s.out.Flush()
	return ""
}

func TestShellSelectAndCommit(t *testing.T) {
	s, buf := newTestShell(t, true)
	runScript(t, s,
		`SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`,
		`.locks`,
		`.commit`,
		`.quit`,
	)
	out := buf.String()
	for _, want := range []string{
		"began transaction",
		"X    db1/seg1/cells/c1/robots/r1",
		"S    db1/seg2/effectors/e2", // rule 4' propagation visible
		"committed transaction",
		"bye",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	if s.proto.Manager().LockCount() != 0 {
		t.Error("locks leaked")
	}
}

func TestShellDMLAndAbort(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`UPDATE e SET tool = 'mut' FROM e IN effectors WHERE e.eff_id = 'e1'`,
		`.abort`,
		`.db`,
		`.quit`,
	)
	out := buf.String()
	if !strings.Contains(out, "1 affected") {
		t.Errorf("no affected count:\n%s", out)
	}
	if !strings.Contains(out, "aborted transaction") {
		t.Errorf("no abort:\n%s", out)
	}
	// The .db dump shows the original value (abort undid the change).
	if !strings.Contains(out, `tool:"t1"`) || strings.Contains(out, `tool:"mut"`) {
		t.Errorf("abort did not undo:\n%s", out)
	}
}

func TestShellErrorsAndCommands(t *testing.T) {
	s, buf := newTestShell(t, true)
	runScript(t, s,
		`.help`,
		`.locks`,   // no active txn
		`.commit`,  // no active txn
		`.unknown`, // unknown command
		`garbage query`,
		``, // blank line
		`SELECT e FROM e IN effectors FOR READ`,
		`.locks`,
		`.quit`, // aborts the open txn
	)
	out := buf.String()
	for _, want := range []string{
		"Commands:",
		"no active transaction",
		"unknown command",
		"error:",
		"3 result(s)",
		"aborted open transaction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
}

func TestShellAuthorizationDenied(t *testing.T) {
	s, buf := newTestShell(t, true)
	runScript(t, s,
		`INSERT INTO effectors VALUE {eff_id: 'e9', tool: 't9'}`,                               // no right
		`UPDATE r SET trajectory = 'x' FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r1'`, // cells: allowed
		`.commit`,
		`.quit`,
	)
	out := buf.String()
	if !strings.Contains(out, "no right to modify") {
		t.Errorf("insert not denied:\n%s", out)
	}
	if !strings.Contains(out, "1 affected") {
		t.Errorf("authorized update failed:\n%s", out)
	}
}

func TestShellEmptyInputQuits(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s) // immediate EOF
	if !strings.Contains(buf.String(), "bye") {
		t.Error("no farewell on EOF")
	}
}

func TestShellRule4PrimeOff(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE`,
		`.locks`,
		`.abort`,
		`.quit`,
	)
	out := buf.String()
	// Plain rule 4: the effectors are X-locked, not S-locked.
	if !strings.Contains(out, "X    db1/seg2/effectors/e2") {
		t.Errorf("rule 4 did not X-lock the shared effector:\n%s", out)
	}
}

func TestShellProjectionAndCollections(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`SELECT r.trajectory FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r2' FOR READ`,
		`.commit`,
		`.quit`,
	)
	out := buf.String()
	if !strings.Contains(out, `cells/c1/robots/r2/trajectory = "tr2"`) {
		t.Errorf("projection missing:\n%s", out)
	}
}

func TestShellCreateRelation(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`CREATE RELATION tools IN SEGMENT seg3 KEY tool_id {tool_id: str, vendor: str}`,
		`INSERT INTO tools VALUE {tool_id: 't1', vendor: 'acme'}`,
		`.commit`,
		`SELECT x FROM x IN tools FOR READ`,
		`.commit`,
		`CREATE RELATION tools IN SEGMENT seg3 KEY tool_id {tool_id: str}`, // duplicate
		`.quit`,
	)
	out := buf.String()
	if !strings.Contains(out, "created relation tools") {
		t.Errorf("create missing:\n%s", out)
	}
	if !strings.Contains(out, `tools/t1 = {tool_id:"t1", vendor:"acme"}`) {
		t.Errorf("query over DDL relation failed:\n%s", out)
	}
	if !strings.Contains(out, "error: schema: duplicate relation") {
		t.Errorf("duplicate create not rejected:\n%s", out)
	}
}

func TestShellGraphAndUnits(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`.graph cells`,
		`.graph`,
		`.graph nowhere`,
		`.units cells c1`,
		`.units`,
		`.units cells zz`,
		`.quit`,
	)
	out := buf.String()
	for _, want := range []string{
		`HoLU (Relation "cells")`,
		`BLU ("ref")  - - -> HeLU (C.O. "effectors")`,
		"usage: .graph <relation>",
		"outer unit: 22 nodes",
		"inner unit effectors/e2 (depth 1)",
		"o-> cells/c1/robots/r2/effectors/e2",
		"usage: .units <relation> <key>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "error:") != 2 {
		t.Errorf("expected 2 errors (unknown relation, unknown object):\n%s", out)
	}
}

func TestShellTrace(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`.trace`, // empty before any query
		`SELECT e FROM e IN effectors WHERE e.eff_id = 'e1' FOR READ`,
		`.trace`,
		`.commit`,
		`.trace`, // now includes releases
		`.quit`,
	)
	out := buf.String()
	for _, want := range []string{
		"no lock events yet",
		"grant",
		"S    db1/seg2/effectors/e1",
		"release",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
}
