package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"colock/internal/lock"
	"colock/internal/trace"
)

// .spans shows the span tree of the running transaction, then the flight
// recorder's view once no transaction is active.
func TestShellSpans(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`.spans`, // nothing yet
		`SELECT c FROM c IN cells WHERE c.cell_id = 'c1' FOR UPDATE`,
		`.spans`, // span tree of the live txn
		`.commit`,
		`.spans`, // flight recorder view
		`.quit`,
	)
	out := buf.String()
	if !strings.Contains(out, "no spans recorded yet") {
		t.Errorf("missing empty-recorder message:\n%s", out)
	}
	if !strings.Contains(out, "span tree of transaction") {
		t.Errorf("missing live span tree:\n%s", out)
	}
	for _, want := range []string{"lock", "upward", "acquire"} {
		if !strings.Contains(out, want) {
			t.Errorf(".spans output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "recent spans (flight recorder") {
		t.Errorf("missing flight-recorder view after commit:\n%s", out)
	}
}

// .profile is empty without contention and .incident without incidents.
func TestShellProfileAndIncidentEmpty(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s, `.profile`, `.incident`, `.quit`)
	out := buf.String()
	if !strings.Contains(out, "profile is empty") {
		t.Errorf("missing empty-profile message:\n%s", out)
	}
	if !strings.Contains(out, "no incidents recorded") {
		t.Errorf("missing empty-incident message:\n%s", out)
	}
}

// .forcetimeout must end in a timeout error, an automatic incident dump that
// parses, and a non-empty contention profile naming the holder.
func TestShellForceTimeout(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	s, err := newShell(false, lock.PolicyDetect, dir, "", bufio.NewWriter(&buf))
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, s, `.forcetimeout`, `.profile`, `.quit`)
	out := buf.String()
	if !strings.Contains(out, "timeout") {
		t.Fatalf("no timeout reported:\n%s", out)
	}
	infos := s.iw.Incidents()
	if len(infos) != 1 || infos[0].Reason != "timeout" {
		t.Fatalf("incidents = %+v, want one timeout", infos)
	}
	inc, err := trace.ParseIncidentFile(infos[0].Path)
	if err != nil {
		t.Fatalf("incident file does not parse: %v", err)
	}
	if len(inc.Spans) == 0 || inc.Queues == nil || inc.DOT == "" {
		t.Errorf("incident missing spans/queues/DOT: reason=%s txn=%d", inc.Reason, inc.Txn)
	}
	if !strings.Contains(out, "blocked-on:txn:") {
		t.Errorf(".profile after forced timeout shows no blocker:\n%s", out)
	}
}

// .forcedeadlock must pick a victim, dump an incident, and refuse to run
// under -deadlock none.
func TestShellForceDeadlock(t *testing.T) {
	s, buf := newTestShellPolicy(t, false, lock.PolicyDetect)
	runScript(t, s, `.forcedeadlock`, `.quit`)
	out := buf.String()
	if !strings.Contains(out, "deadlock") {
		t.Fatalf("no deadlock reported:\n%s", out)
	}
	infos := s.iw.Incidents()
	if len(infos) != 1 || infos[0].Reason != "victim" {
		t.Fatalf("incidents = %+v, want one victim", infos)
	}
	if _, err := trace.ParseIncidentFile(infos[0].Path); err != nil {
		t.Fatalf("incident file does not parse: %v", err)
	}

	sn, bufn := newTestShellPolicy(t, false, lock.PolicyNone)
	runScript(t, sn, `.forcedeadlock`, `.quit`)
	if !strings.Contains(bufn.String(), "restart with -deadlock") {
		t.Errorf("policy none did not refuse:\n%s", bufn.String())
	}
	if len(sn.iw.Incidents()) != 0 {
		t.Errorf("policy none wrote an incident")
	}
}
