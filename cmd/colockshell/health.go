package main

// The lock-health commands: .health prints the SLO verdict with the windowed
// rate series, .health json emits the full /health document, .health dump
// writes it to a file (the healthmon-smoke Makefile gate scrapes that dump),
// .health auto toggles the burn-alert → admission-control policy, and .topk
// ranks the hottest contended resources from the space-saving sketch.
//
// Every command advances the monitor's window clock to now first: the
// monitor has no timer of its own — polls ARE the clock.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"colock/internal/health"
	"colock/internal/lock"
	"colock/internal/metrics"
)

// shellDegraded is the admission gate `.health auto on` installs while the
// SLO is critical: a short queue cap that degrades (weakens to a coarser
// grant) rather than rejects, so the shell stays usable under the policy.
var shellDegraded = lock.AdmissionConfig{
	MaxWaiters: 4,
	MaxDelay:   2 * time.Millisecond,
	Mode:       lock.AdmitDegrade,
}

func (s *shell) healthCmd(arg string) {
	fields := strings.Fields(arg)
	s.mon.Advance(time.Now())
	switch {
	case len(fields) == 0:
		s.showHealth()
	case fields[0] == "json" && len(fields) == 1:
		if err := s.mon.WriteJSON(s.out); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	case fields[0] == "dump" && len(fields) == 2:
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			return
		}
		werr := s.mon.WriteJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(s.out, "error: write %s: %v%v\n", fields[1], werr, cerr)
			return
		}
		fmt.Fprintf(s.out, "-- health report written to %s\n", fields[1])
	case fields[0] == "auto" && len(fields) == 2 && fields[1] == "on":
		if s.auto == nil {
			s.auto = s.mon.EnableAutoAdmission(s.proto.Manager(), shellDegraded)
		} else {
			s.auto.Enable()
		}
		fmt.Fprintf(s.out, "auto-admission on: critical installs %+v, ok removes it\n", shellDegraded)
	case fields[0] == "auto" && len(fields) == 2 && fields[1] == "off":
		if s.auto == nil {
			fmt.Fprintln(s.out, "auto-admission was never enabled")
			return
		}
		s.auto.Disable()
		engages, recoveries := s.auto.Stats()
		fmt.Fprintf(s.out, "auto-admission off (engaged %d time(s), recovered %d)\n", engages, recoveries)
	default:
		fmt.Fprintln(s.out, "usage: .health [json|dump <path>|auto on|auto off]")
	}
}

func (s *shell) showHealth() {
	rep := s.mon.Report(8)
	fmt.Fprintf(s.out, "health: %s", rep.State)
	if rep.Reason != "" {
		fmt.Fprintf(s.out, " (%s)", rep.Reason)
	}
	fmt.Fprintf(s.out, "  breach-streak=%d clean-streak=%d waiters=%d window=%v\n",
		rep.BreachStreak, rep.CleanStreak, rep.WaiterDepth,
		time.Duration(rep.WindowMs*float64(time.Millisecond)))
	if s.auto != nil {
		engaged := "standing by"
		if s.auto.Engaged() {
			engaged = "ENGAGED (degraded admission installed)"
		}
		fmt.Fprintf(s.out, "auto-admission: %s\n", engaged)
	}

	if len(rep.Windows) == 0 {
		fmt.Fprintln(s.out, "no closed windows yet (windows close as time passes; rerun after traffic)")
		return
	}
	tab := metrics.NewTable("Recent windows (oldest first)",
		"epoch", "acquires", "fastpath", "blocks", "aborts", "retries", "abort%", "p99 wait")
	for _, w := range rep.Windows {
		aborts := w.Counts["victims"] + w.Counts["wait_die"] + w.Counts["timeouts"]
		tab.Addf(w.Epoch, w.Counts["acquires"], w.Counts["fast_path_hits"],
			w.Counts["blocks"], aborts, w.Counts["retries"],
			fmt.Sprintf("%.2f", 100*w.AbortRate),
			time.Duration(w.WaitP99Ms*float64(time.Millisecond)).Round(time.Microsecond))
	}
	fmt.Fprint(s.out, tab)
}

func (s *shell) showTopK(arg string) {
	n := 10
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v <= 0 {
			fmt.Fprintf(s.out, "bad count %q (usage: .topk [n])\n", arg)
			return
		}
		n = v
	}
	s.mon.Advance(time.Now())
	top := s.mon.TopK(n)
	if len(top) == 0 {
		fmt.Fprintln(s.out, "no contention recorded (the sketch only counts blocked/aborted requests)")
		return
	}
	tab := metrics.NewTable("Hottest contended resources (decayed counts)",
		"#", "resource", "mode", "count", "±err")
	for i, e := range top {
		tab.Addf(i+1, string(e.Resource), e.Mode, e.Count, e.MaxErr)
	}
	fmt.Fprint(s.out, tab)
}

// healthSnapshot is used by tests to read the monitor without racing the
// repl goroutine: it advances the clock and returns the report.
func (s *shell) healthSnapshot() health.Report {
	s.mon.Advance(time.Now())
	return s.mon.Report(0)
}
