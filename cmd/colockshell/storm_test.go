package main

import (
	"strings"
	"testing"
)

func TestShellChaosAndStorm(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`.chaos`,
		`.chaos victim=0.2 delay=0.1 seed=7`,
		`.chaos`,
		`.storm 4 5`,
		`.metrics`,
		`.chaos off`,
		`.chaos`,
		`.quit`,
	)
	out := buf.String()
	for _, want := range []string{
		"chaos injection is off",
		"chaos on:",
		"storm: 4 workers × 5 rounds",
		"20 commits, 0 failures",
		"retry summary:",
		"injected faults",
		"chaos injection off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellChaosBadArgs(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s,
		`.chaos victim=2`,
		`.chaos frob=1`,
		`.chaos seed=x`,
		`.storm nope`,
		`.quit`,
	)
	out := buf.String()
	for _, want := range []string{
		`bad rate "2"`,
		`unknown key "frob"`,
		`bad seed "x"`,
		`bad worker count "nope"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
