package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"colock/internal/journal"
	"colock/internal/lock"
	"colock/internal/trace"
)

// TestShellJournal wires a shell with -journal and checks the full loop:
// a storm's events persist to segments, .journal reports status, the
// timeout incident records the journal offset, and reading the journal
// back yields the storm's hot key plus the lead-up to the incident.
func TestShellJournal(t *testing.T) {
	incDir, jDir := t.TempDir(), t.TempDir()
	var buf bytes.Buffer
	s, err := newShell(false, lock.PolicyDetect, incDir, jDir, bufio.NewWriter(&buf))
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, s,
		`.storm 4 3`,
		`.journal flush`,
		`.journal`,
		`.forcetimeout`,
		`.quit`,
	)
	out := buf.String()
	if !strings.Contains(out, "journal "+jDir) {
		t.Errorf(".journal output missing status header:\n%s", out)
	}
	if !strings.Contains(out, "records persisted") {
		t.Errorf(".journal output missing counters:\n%s", out)
	}
	if !strings.Contains(out, "journal closed:") {
		t.Errorf(".quit did not report the closed journal:\n%s", out)
	}

	recs, torn, err := journal.ReadAll(jDir)
	if err != nil {
		t.Fatalf("reading journal back: %v", err)
	}
	if torn {
		t.Error("clean shutdown produced a torn journal")
	}
	kinds := map[string]int{}
	hotSeen := false
	for _, r := range recs {
		kinds[r.Kind]++
		if strings.Contains(string(r.Resource), "cells/c1") {
			hotSeen = true
		}
	}
	if kinds["grant"] == 0 || kinds["release-all"] == 0 {
		t.Errorf("journal kinds = %v, want grants and releases from the storm", kinds)
	}
	if kinds["timeout"] == 0 {
		t.Errorf("journal kinds = %v, want the .forcetimeout event", kinds)
	}
	if !hotSeen {
		t.Error("journal never mentions the storm's hot key cells/c1")
	}

	// The incident header carries the journal offset, and the offset bounds
	// the Seq ordinals of everything journaled before the dump.
	infos := s.iw.Incidents()
	if len(infos) != 1 {
		t.Fatalf("incidents = %+v, want one from .forcetimeout", infos)
	}
	if infos[0].JournalOffset == 0 {
		t.Fatal("incident recorded no journal offset")
	}
	inc, err := trace.ParseIncidentFile(infos[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if inc.JournalOffset != infos[0].JournalOffset {
		t.Fatalf("parsed offset %d != recorded %d", inc.JournalOffset, infos[0].JournalOffset)
	}
	if max := recs[len(recs)-1].Seq; inc.JournalOffset > max {
		t.Fatalf("offset %d exceeds persisted Seq %d", inc.JournalOffset, max)
	}
	// The timeout event that triggered the dump is inside the offset (the
	// journal sink runs before the incident writer).
	found := false
	for _, r := range recs {
		if r.Kind == "timeout" && r.Seq <= inc.JournalOffset {
			found = true
		}
	}
	if !found {
		t.Error("triggering timeout event not covered by the incident's journal offset")
	}
}

// TestShellJournalAbsent pins the .journal error path without -journal.
func TestShellJournalAbsent(t *testing.T) {
	s, buf := newTestShell(t, false)
	runScript(t, s, `.journal`, `.quit`)
	if !strings.Contains(buf.String(), "no journal attached") {
		t.Errorf("missing no-journal message:\n%s", buf.String())
	}
}
