// Command colockshell is an interactive query shell over the paper's
// example database with live lock tracing: every HDBL query is executed
// through the planner and the lock protocol, and the shell shows which
// locks were requested, in which modes, and the chosen plan granule.
//
//	$ colockshell
//	> SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
//	...
//	> .locks      # locks of the current transaction
//	> .commit     # commit (and release)
//	> .help
//
// Flags: -rule4prime enables authorization cooperation (the shell's
// transaction may then modify "cells" but not "effectors"); -deadlock
// selects the deadlock policy (detect, waitdie, none); -obs starts the
// observability HTTP endpoint on the given address.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/health"
	"colock/internal/journal"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/obs"
	"colock/internal/query"
	"colock/internal/resilience"
	"colock/internal/store"
	"colock/internal/trace"
	"colock/internal/txn"
)

type shell struct {
	st     *store.Store
	proto  *core.Protocol
	mgr    *txn.Manager
	exec   *query.Executor
	auth   *authz.Table
	prime  bool
	policy lock.Policy
	tx     *txn.Txn
	out    *bufio.Writer
	trace  *traceRing
	col    *obs.Collector
	rec    *trace.Recorder
	prof   *trace.Profile
	iw     *trace.IncidentWriter

	// Contention-survival state (.chaos / .storm).
	chaos    *resilience.Chaos
	chaosCfg resilience.ChaosConfig
	retry    *obs.RetryCollector

	// Lock-health monitor (.health / .topk) and its optional auto-admission
	// policy (.health auto on|off).
	mon  *health.Monitor
	auto *health.AutoAdmission

	// Durable lock-event journal (.journal; -journal dir). Nil unless the
	// shell was started with a journal directory.
	jw *journal.Writer
}

// traceRing keeps the most recent lock-manager events for the .trace
// command. The OnEvent hook runs outside the manager's shard latches, so
// the ring only needs its own small mutex.
type traceRing struct {
	mu  sync.Mutex
	buf []lock.Event
	cap int
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{cap: capacity}
}

func (t *traceRing) add(e lock.Event) {
	t.mu.Lock()
	t.buf = append(t.buf, e)
	if len(t.buf) > t.cap {
		t.buf = t.buf[len(t.buf)-t.cap:]
	}
	t.mu.Unlock()
}

func (t *traceRing) snapshot() []lock.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]lock.Event(nil), t.buf...)
}

// newShell builds a fully wired shell (shared by main and the tests): the
// lock manager's event stream feeds the .trace ring (OnEvent hook), the obs
// collector, the contention profile and the incident writer (sinks), and the
// protocol records span trees into the recorder — every user statement is
// traced (sample shift 0) since the shell is interactive. Incident dumps for
// deadlock victims and acquire timeouts land in incidentDir. A non-empty
// journalDir additionally attaches the durable lock-event journal: every
// event (plus fast-path hits and SLO transitions) persists to append-only
// segments that colockreplay analyzes offline, and incident dumps record the
// journal offset for -around correlation.
func newShell(prime bool, policy lock.Policy, incidentDir, journalDir string, out *bufio.Writer) (*shell, error) {
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	opts := core.Options{}
	if prime {
		opts = core.Options{Rule4Prime: true, Authorizer: auth}
	}
	ring := newTraceRing(64)
	kindOf := core.UnitKindOf(nm)
	col := obs.NewCollector(obs.Options{
		KindLabels: core.UnitKindLabels,
		KindOf:     kindOf,
	})
	mgr := lock.NewManager(lock.Options{
		Policy:  policy,
		OnEvent: ring.add,
		Sinks:   []lock.EventSink{col},
	})
	rec := trace.NewRecorder(trace.Options{
		ShardOf: mgr.ShardOf,
		KindOf: func(r lock.Resource) string {
			if k := kindOf(r); k >= 0 && k < len(core.UnitKindLabels) {
				return core.UnitKindLabels[k]
			}
			return "other"
		},
	})
	var jw *journal.Writer
	if journalDir != "" {
		var err error
		jw, err = journal.Open(journalDir, journal.Options{})
		if err != nil {
			return nil, err
		}
		// Attached before the incident writer so the event that triggers a
		// dump is inside the journal offset the dump records.
		mgr.AttachSink(jw)
	}
	prof := trace.NewProfile()
	incOpts := trace.IncidentOptions{}
	if jw != nil {
		incOpts.JournalOffset = jw.Offset
	}
	iw := trace.NewIncidentWriter(incidentDir, rec, mgr, incOpts)
	mgr.AttachSink(prof)
	mgr.AttachSink(iw)
	mon := health.NewMonitor(health.Options{
		Window: time.Second,
		Retain: 60,
		TopK:   32,
		SLO: health.SLO{
			MaxAbortRate:   0.05,
			MaxWaitP99:     250 * time.Millisecond,
			MaxWaiterDepth: 64,
		},
		WaiterDepth: mgr.WaitingTxns,
		GrantPath:   mgr.Stats,
	})
	mgr.AttachSink(mon) // joins the ResetStats cascade via the resettable check
	// SLO transitions surface in the .trace ring like any lock event, and in
	// the journal so offline replay can compare its own grading against the
	// transitions the live monitor actually fired.
	mon.OnTransition(func(tr health.Transition) {
		detail := fmt.Sprintf("%s->%s %s", tr.From, tr.To, tr.Reason)
		ring.add(lock.Event{
			Kind:     "health",
			At:       time.Now(),
			Resource: lock.Resource(detail),
		})
		if jw != nil {
			jw.Note("health", detail)
		}
	})
	retry := obs.NewRetryCollector()
	// The retry collector is not an event sink (it observes the retry layer,
	// not the manager), so it must be registered into the reset cascade
	// explicitly — otherwise .storm summaries survive a ResetStats.
	mgr.OnResetStats(retry.ResetStats)
	opts.Tracer = rec
	proto := core.NewProtocol(mgr, st, nm, opts)
	// OnFastPathHit holds ONE callback, so the monitor's counter and the
	// journal compose in a single closure.
	if jw != nil {
		proto.OnFastPathHit(func() {
			mon.RecordFastPathHit()
			jw.RecordFastPathHit()
		})
	} else {
		proto.OnFastPathHit(mon.RecordFastPathHit)
	}
	tm := txn.NewManager(proto, st)
	return &shell{
		st: st, proto: proto, mgr: tm,
		exec: query.NewExecutor(tm, core.PlannerOptions{}),
		auth: auth, prime: prime, policy: policy,
		out:   out,
		trace: ring,
		col:   col,
		rec:   rec,
		prof:  prof,
		iw:    iw,
		retry: retry,
		mon:   mon,
		jw:    jw,
	}, nil
}

func parsePolicy(name string) (lock.Policy, error) {
	switch name {
	case "detect":
		return lock.PolicyDetect, nil
	case "waitdie":
		return lock.PolicyWaitDie, nil
	case "none":
		return lock.PolicyNone, nil
	}
	return lock.PolicyDetect, fmt.Errorf("unknown deadlock policy %q (detect, waitdie, none)", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("colockshell: ")
	prime := flag.Bool("rule4prime", true, "enable authorization cooperation (rule 4')")
	deadlock := flag.String("deadlock", "detect", "deadlock policy: detect, waitdie or none")
	obsAddr := flag.String("obs", "", "serve the observability HTTP endpoint on this address (e.g. 127.0.0.1:8023)")
	incidents := flag.String("incidents", filepath.Join(os.TempDir(), "colockshell-incidents"),
		"directory for deadlock/timeout incident dumps (JSONL)")
	journalDir := flag.String("journal", "",
		"directory for the durable lock-event journal (analyze offline with colockreplay)")
	pprofOn := flag.Bool("pprof", false,
		"expose net/http/pprof under /debug/pprof/ on the -obs endpoint")
	flag.Parse()

	policy, err := parsePolicy(*deadlock)
	if err != nil {
		log.Fatal(err)
	}
	s, err := newShell(*prime, policy, *incidents, *journalDir, bufio.NewWriter(os.Stdout))
	if err != nil {
		log.Fatal(err)
	}
	defer s.out.Flush()
	if s.jw != nil {
		defer s.jw.Close()
	}

	if *obsAddr != "" {
		ts := &obs.TraceSources{Recorder: s.rec, Incidents: s.iw, Profile: s.prof, Health: s.mon.Handler(), Pprof: *pprofOn}
		extras := []func(io.Writer){s.proto.WriteMetrics, s.retry.WriteMetrics, s.mon.WriteMetrics}
		if s.jw != nil {
			ts.Journal = s.jw.StatusHandler()
			extras = append(extras, s.jw.WriteMetrics)
		}
		srv, err := obs.Serve(*obsAddr, s.proto.Manager(), s.col, ts, extras...)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(s.out, "observability endpoint on http://%s/ (/metrics, /queues, /dot, /health, /trace/...)\n", srv.Addr())
	}
	fmt.Fprintf(s.out, "incident dumps in %s\n", *incidents)
	if s.jw != nil {
		fmt.Fprintf(s.out, "journaling lock events to %s (colockreplay -dir %s)\n", *journalDir, *journalDir)
	}

	fmt.Fprintln(s.out, "colock shell over the paper's example database (Figures 1/6).")
	fmt.Fprintln(s.out, "Enter HDBL queries or .help; rule 4' is", map[bool]string{true: "ON", false: "OFF"}[*prime])
	s.repl(bufio.NewScanner(os.Stdin))
}

func (s *shell) repl(in *bufio.Scanner) {
	for {
		s.out.WriteString("> ")
		s.out.Flush()
		if !in.Scan() {
			s.quit()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			s.quit()
			return
		case line == ".help":
			s.help()
		case line == ".locks":
			s.showLocks()
		case line == ".trace":
			s.showTrace()
		case line == ".spans":
			s.showSpans()
		case line == ".profile":
			s.showProfile()
		case line == ".incident":
			s.showIncidents()
		case line == ".forcetimeout":
			s.forceTimeout()
		case line == ".forcedeadlock":
			s.forceDeadlock()
		case line == ".metrics":
			s.showMetrics()
		case strings.HasPrefix(line, ".health"):
			s.healthCmd(strings.TrimSpace(strings.TrimPrefix(line, ".health")))
		case strings.HasPrefix(line, ".topk"):
			s.showTopK(strings.TrimSpace(strings.TrimPrefix(line, ".topk")))
		case strings.HasPrefix(line, ".journal"):
			s.journalCmd(strings.TrimSpace(strings.TrimPrefix(line, ".journal")))
		case strings.HasPrefix(line, ".chaos"):
			s.chaosCmd(strings.TrimSpace(strings.TrimPrefix(line, ".chaos")))
		case strings.HasPrefix(line, ".storm"):
			s.storm(strings.TrimSpace(strings.TrimPrefix(line, ".storm")))
		case strings.HasPrefix(line, ".queues"):
			s.showQueues(strings.TrimSpace(strings.TrimPrefix(line, ".queues")) == "all")
		case line == ".dot":
			s.showDOT()
		case line == ".commit":
			s.finish(true)
		case line == ".abort":
			s.finish(false)
		case line == ".db":
			s.showDB()
		case strings.HasPrefix(line, ".graph"):
			s.showGraph(strings.TrimSpace(strings.TrimPrefix(line, ".graph")))
		case strings.HasPrefix(line, ".units"):
			s.showUnits(strings.Fields(strings.TrimPrefix(line, ".units")))
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(s.out, "unknown command %q (try .help)\n", line)
		case strings.HasPrefix(strings.ToUpper(line), "CREATE"):
			s.runCreate(line)
		default:
			s.runQuery(line)
		}
	}
}

func (s *shell) help() {
	fmt.Fprint(s.out, `Queries:  SELECT v FROM v IN <relation>[, w IN v.<attr>...]
          [WHERE v.<attr> = 'lit' [AND ...]] [FOR READ|FOR UPDATE] [NOFOLLOW]
          UPDATE v SET <attr> = lit[, ...] FROM ... [WHERE ...] [NOFOLLOW]
          DELETE v FROM ... [WHERE ...] [NOFOLLOW]
          INSERT INTO <relation> VALUE {attr: lit, c: SET(id: {...}), r: REF(rel, 'key')}
          CREATE RELATION <name> IN SEGMENT <seg> KEY <attr> {attr: type, ...}
Commands: .locks   show locks of the current transaction
          .trace   show recent lock-manager events (grant/wait/convert/release/victim)
          .spans   span tree of the current transaction (or recent spans)
          .profile blocked-time contention profile (folded flame-graph stacks)
          .incident      list deadlock/timeout incident dumps
          .forcetimeout  run a scripted two-txn scenario ending in a lock timeout
          .forcedeadlock run a scripted two-txn ABBA deadlock (needs detect/waitdie)
          .metrics lock-manager and protocol telemetry (latencies, counters)
          .health [json|dump <path>|auto on|auto off]  SLO verdict + window series
          .topk [n]  hottest contended resources (decayed space-saving sketch)
          .journal [flush]  durable lock-event journal status (-journal dir)
          .chaos [off|victim=R timeout=R delay=R seed=N]  deterministic fault injection
          .storm [workers] [rounds]  hot-key write storm through the retry layer
          .queues [all]  live lock queues (contended only, or all)
          .dot     waits-for graph in Graphviz DOT format
          .graph <relation>       object-specific lock graph (Fig. 5)
          .units <relation> <key> unit decomposition (Fig. 6)
          .commit  commit the current transaction (releases locks)
          .abort   abort the current transaction
          .db      show the database contents
          .quit    leave
A transaction starts implicitly with the first query.
`)
}

func (s *shell) ensureTx() *txn.Txn {
	if s.tx == nil || s.tx.State() != txn.Active {
		s.tx = s.mgr.Begin()
		if s.prime {
			s.auth.Grant(s.tx.ID(), "cells") // shell user may modify cells, not effectors
		}
		fmt.Fprintf(s.out, "-- began transaction %d\n", s.tx.ID())
	}
	return s.tx
}

func (s *shell) runCreate(src string) {
	stmt, err := query.ParseCreate(src)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	if err := stmt.Apply(s.st.Catalog()); err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(s.out, "-- created relation %s (segment %s, key %s)\n",
		stmt.Relation.Name, stmt.Relation.Segment, stmt.Relation.Key)
}

func (s *shell) runQuery(src string) {
	tx := s.ensureTx()
	before := len(s.proto.Manager().HeldLocks(tx.ID()))
	res, err := s.exec.RunStatement(tx, src)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	if res.Kind != query.StmtInsert {
		fmt.Fprintf(s.out, "-- %s\n", res.Plan)
	}
	for _, r := range res.Results {
		fmt.Fprintf(s.out, "%s = %s\n", r.Path, r.Value)
	}
	switch res.Kind {
	case query.StmtSelect:
		fmt.Fprintf(s.out, "-- %d result(s); new locks:\n", len(res.Results))
	default:
		fmt.Fprintf(s.out, "-- %d affected; new locks:\n", res.Affected)
	}
	held := s.proto.Manager().HeldLocks(tx.ID())
	for i := before; i < len(held); i++ {
		fmt.Fprintf(s.out, "   %-4s %s\n", held[i].Mode, held[i].Resource)
	}
}

func (s *shell) showLocks() {
	if s.tx == nil || s.tx.State() != txn.Active {
		fmt.Fprintln(s.out, "no active transaction")
		return
	}
	held := s.proto.Manager().HeldLocks(s.tx.ID())
	if len(held) == 0 {
		fmt.Fprintln(s.out, "no locks held")
		return
	}
	for _, h := range held {
		fmt.Fprintf(s.out, "%-4s %s\n", h.Mode, h.Resource)
	}
}

func (s *shell) showTrace() {
	if s.trace == nil {
		fmt.Fprintln(s.out, "tracing not enabled")
		return
	}
	evs := s.trace.snapshot()
	if len(evs) == 0 {
		fmt.Fprintln(s.out, "no lock events yet")
		return
	}
	for _, e := range evs {
		fmt.Fprintf(s.out, "%-8s txn %-3d %-4s %s\n", e.Kind, e.Txn, e.Mode, e.Resource)
	}
}

func (s *shell) showSpans() {
	if s.tx != nil && s.tx.State() == txn.Active {
		spans := s.rec.SpansOf(s.tx.ID())
		if len(spans) == 0 {
			fmt.Fprintln(s.out, "no spans for the current transaction yet")
			return
		}
		fmt.Fprintf(s.out, "span tree of transaction %d:\n%s", s.tx.ID(), trace.Tree(spans))
		return
	}
	recent := s.rec.Recent(32)
	if len(recent) == 0 {
		fmt.Fprintln(s.out, "no spans recorded yet (flight recorder empty)")
		return
	}
	fmt.Fprintln(s.out, "recent spans (flight recorder, oldest first):")
	for _, sp := range recent {
		fmt.Fprintf(s.out, "  txn %-3d %-20s %-4s %-12s %v\n", sp.Txn, sp.Kind, sp.Mode, sp.Resource, sp.Dur)
	}
}

func (s *shell) showProfile() {
	folded := s.prof.FoldedStacks()
	if folded == "" {
		fmt.Fprintln(s.out, "no blocked time recorded (profile is empty)")
		return
	}
	fmt.Fprintln(s.out, "contention profile (folded stacks, flamegraph.pl-compatible):")
	fmt.Fprint(s.out, folded)
}

func (s *shell) showIncidents() {
	infos := s.iw.Incidents()
	if len(infos) == 0 {
		fmt.Fprintln(s.out, "no incidents recorded")
		return
	}
	for _, in := range infos {
		fmt.Fprintf(s.out, "#%d %-8s txn %-3d %-4s %-24s %s\n",
			in.Seq, in.Reason, in.Txn, in.Mode, in.Resource, in.Path)
	}
}

// forceTimeout runs a self-contained two-transaction scenario ending in an
// acquire timeout: a holder takes X on cells/c1, then an older transaction
// requests the same lock with a short deadline. The timeout event makes the
// incident writer dump the blocked transaction's span tree automatically.
// (The blocked transaction is begun first so it is the older one — under
// wait-die the older requester waits rather than dying, so the scenario
// produces a timeout under every deadlock policy.)
func (s *shell) forceTimeout() {
	if s.tx != nil && s.tx.State() == txn.Active {
		fmt.Fprintln(s.out, "finish the current transaction first (.commit or .abort)")
		return
	}
	waiter := s.mgr.Begin()
	holder := s.mgr.Begin()
	if s.prime {
		s.auth.Grant(waiter.ID(), "cells")
		s.auth.Grant(holder.ID(), "cells")
	}
	if err := holder.LockPath(nil, store.P("cells", "c1"), lock.X); err != nil {
		fmt.Fprintf(s.out, "error: holder: %v\n", err)
		waiter.Abort()
		holder.Abort()
		return
	}
	fmt.Fprintf(s.out, "-- txn %d holds X cells/c1; txn %d requests it with a 50ms deadline\n",
		holder.ID(), waiter.ID())
	err := waiter.Lock(nil, core.DataNode(store.P("cells", "c1")), lock.X, txn.WithTimeout(50*time.Millisecond))
	fmt.Fprintf(s.out, "-- txn %d: %v\n", waiter.ID(), err)
	waiter.Abort()
	holder.Abort()
	s.showIncidents()
}

// forceDeadlock runs a self-contained two-transaction ABBA deadlock on the
// effector library (e1/e3 have no outgoing references, so the conflict stays
// on the two objects): a takes X e1, b takes X e3, a requests e3 in the
// background, and once a is queued b requests e1, closing the cycle. The
// victim event dumps an incident automatically.
func (s *shell) forceDeadlock() {
	if s.policy == lock.PolicyNone {
		fmt.Fprintln(s.out, "deadlock policy is none (the cycle would hang); restart with -deadlock detect or waitdie")
		return
	}
	if s.tx != nil && s.tx.State() == txn.Active {
		fmt.Fprintln(s.out, "finish the current transaction first (.commit or .abort)")
		return
	}
	a := s.mgr.Begin()
	b := s.mgr.Begin()
	if s.prime {
		s.auth.Grant(a.ID(), "effectors")
		s.auth.Grant(b.ID(), "effectors")
	}
	m := s.proto.Manager()
	if err := a.LockPath(nil, store.P("effectors", "e1"), lock.X); err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		a.Abort()
		b.Abort()
		return
	}
	if err := b.LockPath(nil, store.P("effectors", "e3"), lock.X); err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		a.Abort()
		b.Abort()
		return
	}
	fmt.Fprintf(s.out, "-- txn %d holds X effectors/e1, txn %d holds X effectors/e3\n", a.ID(), b.ID())
	aDone := make(chan error, 1)
	go func() { aDone <- a.LockPath(nil, store.P("effectors", "e3"), lock.X) }()
	for i := 0; i < 2000 && m.WaitingTxns() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	errB := b.LockPath(nil, store.P("effectors", "e1"), lock.X)
	if errB != nil {
		b.Abort() // releases e3, unblocking a
	}
	errA := <-aDone
	fmt.Fprintf(s.out, "-- txn %d request for e3: %v\n", a.ID(), errA)
	fmt.Fprintf(s.out, "-- txn %d request for e1: %v\n", b.ID(), errB)
	a.Abort()
	if errB == nil {
		b.Abort()
	}
	s.showIncidents()
}

func (s *shell) showMetrics() {
	m := s.proto.Manager()
	st := m.Stats()

	ops := metrics.NewTable("Lock-manager counters", "counter", "value")
	for _, kv := range []struct {
		name string
		val  uint64
	}{
		{"requests", st.Requests}, {"regrants", st.Regrants},
		{"grants", st.Grants}, {"conversions", st.Conversions},
		{"conflicts", st.Conflicts}, {"waits", st.Waits},
		{"deadlocks", st.Deadlocks}, {"releases", st.Releases},
		{"batches", st.Batches}, {"batch fast grants", st.BatchFastGrants},
		{"batch fallbacks", st.BatchFallbacks},
		{"sheds", st.Sheds}, {"admit delays", st.AdmitDelays},
		{"degraded acquires", st.DegradedAcquires},
		{"injected faults", st.InjectedFaults},
		{"summary fast checks", st.SummaryFastChecks},
		{"deferred detections", st.DeferredDetections},
		{"detector runs", st.DetectorRuns},
	} {
		ops.Addf(kv.name, kv.val)
	}
	ops.Addf("max table size", st.MaxTableSize)
	ops.Addf("active txns", m.ActiveTxns())
	ops.Addf("waiting txns", m.WaitingTxns())
	fmt.Fprint(s.out, ops)
	if snap := s.retry.Attempts(); snap.Commits+snap.GiveUps > 0 {
		fmt.Fprintf(s.out, "\nretry (.storm): %s\n", s.retry)
	}

	ps := s.proto.Stats()
	rules := metrics.NewTable("Protocol rule applications", "rule", "count")
	rules.Addf("requests", ps.Requests)
	rules.Addf("upward locks (1-4, order 5)", ps.UpwardLocks)
	rules.Addf("downward propagations (3/4)", ps.DownwardPropagations)
	rules.Addf("rule 4' weakened to S", ps.Rule4PrimeWeakened)
	rules.Addf("memo hits", ps.MemoHits)
	rules.Addf("no-follow requests", ps.NoFollow)
	rules.Addf("fast-path cache hits", ps.FastPathHits)
	rules.Addf("batched manager locks", ps.BatchedLocks)
	fmt.Fprintf(s.out, "\n%s", rules)

	lat := metrics.NewTable("Latencies by op, mode and unit kind",
		"op", "mode", "unit", "count", "p50", "p95", "p99", "max")
	views := s.col.Histograms()
	for _, v := range views {
		lat.Addf(v.Op.String(), v.Mode.String(), v.Kind, v.Snap.Count,
			v.Snap.Quantile(0.50), v.Snap.Quantile(0.95), v.Snap.Quantile(0.99), v.Snap.Max)
	}
	if len(views) == 0 {
		fmt.Fprintln(s.out, "\nno latency observations yet")
		return
	}
	fmt.Fprintf(s.out, "\n%s", lat)
}

func (s *shell) showQueues(all bool) {
	qs := s.proto.Manager().SnapshotQueues()
	shown := 0
	for _, q := range qs {
		if !all && !q.Contended() {
			continue
		}
		shown++
		fmt.Fprintf(s.out, "%s (shard %d)\n", q.Resource, q.Shard)
		for _, g := range q.Granted {
			durable := ""
			if g.Durable {
				durable = " durable"
			}
			fmt.Fprintf(s.out, "  granted txn %-3d %s%s\n", g.Txn, g.Mode, durable)
		}
		for _, w := range q.Waiting {
			convert := ""
			if w.Convert {
				convert = " (conversion)"
			}
			fmt.Fprintf(s.out, "  waiting txn %-3d %s%s\n", w.Txn, w.Mode, convert)
		}
	}
	if shown == 0 {
		if all {
			fmt.Fprintln(s.out, "lock table is empty")
		} else {
			fmt.Fprintln(s.out, "no contended resources (.queues all shows every entry)")
		}
	}
}

func (s *shell) showDOT() {
	fmt.Fprint(s.out, s.proto.Manager().WaitsForDOT())
}

func (s *shell) showGraph(relation string) {
	if relation == "" {
		fmt.Fprintln(s.out, "usage: .graph <relation>")
		return
	}
	g, err := core.DeriveGraph(s.st.Catalog(), relation)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprint(s.out, g.Render())
}

func (s *shell) showUnits(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(s.out, "usage: .units <relation> <key>")
		return
	}
	nm := core.NewNamer(s.st.Catalog(), false)
	u, err := core.ComputeUnits(s.st, nm, store.P(args[0], args[1]))
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(s.out, "outer unit: %d nodes\n", len(u.OuterNodes))
	for _, iu := range u.Inner {
		fmt.Fprintf(s.out, "inner unit %s (depth %d), referenced from:\n", iu.EntryPoint, iu.Depth)
		for _, r := range iu.ReferencedFrom {
			fmt.Fprintf(s.out, "  o-> %s\n", r)
		}
	}
}

func (s *shell) showDB() {
	for _, rel := range s.st.Catalog().Relations() {
		fmt.Fprintf(s.out, "relation %s:\n", rel.Name)
		for _, key := range s.st.Keys(rel.Name) {
			fmt.Fprintf(s.out, "  %s = %s\n", key, s.st.Get(rel.Name, key))
		}
	}
}

func (s *shell) finish(commit bool) {
	if s.tx == nil || s.tx.State() != txn.Active {
		fmt.Fprintln(s.out, "no active transaction")
		return
	}
	if commit {
		if err := s.tx.Commit(); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(s.out, "-- committed transaction %d\n", s.tx.ID())
	} else {
		s.tx.Abort()
		fmt.Fprintf(s.out, "-- aborted transaction %d\n", s.tx.ID())
	}
	s.tx = nil
}

// journalCmd implements .journal: bare shows the writer's status, "flush"
// forces buffered records to disk first (useful before pointing colockreplay
// at a live journal).
func (s *shell) journalCmd(arg string) {
	if s.jw == nil {
		fmt.Fprintln(s.out, "no journal attached (restart with -journal <dir>)")
		return
	}
	switch arg {
	case "":
	case "flush":
		if err := s.jw.Flush(); err != nil {
			fmt.Fprintf(s.out, "error: journal flush: %v\n", err)
			return
		}
		fmt.Fprintln(s.out, "-- journal flushed")
	default:
		fmt.Fprintln(s.out, "usage: .journal [flush]")
		return
	}
	st := s.jw.Status()
	fmt.Fprintf(s.out, "journal %s\n", st.Dir)
	fmt.Fprintf(s.out, "  segment %d of %d, %d records persisted (%d accepted, %d dropped), %d bytes\n",
		st.Segment, st.Segments, st.Records, st.Accepted, st.Dropped, st.Bytes)
	if st.Error != "" {
		fmt.Fprintf(s.out, "  WRITE ERROR: %s (journaling stopped; events are being dropped)\n", st.Error)
	}
}

func (s *shell) quit() {
	if s.tx != nil && s.tx.State() == txn.Active {
		s.tx.Abort()
		fmt.Fprintln(s.out, "-- aborted open transaction")
	}
	if s.jw != nil {
		if err := s.jw.Close(); err != nil {
			fmt.Fprintf(s.out, "journal close: %v\n", err)
		} else {
			st := s.jw.Status()
			fmt.Fprintf(s.out, "journal closed: %d records in %s\n", st.Records, st.Dir)
		}
	}
	fmt.Fprintln(s.out, "bye")
}
