// Command colockshell is an interactive query shell over the paper's
// example database with live lock tracing: every HDBL query is executed
// through the planner and the lock protocol, and the shell shows which
// locks were requested, in which modes, and the chosen plan granule.
//
//	$ colockshell
//	> SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
//	...
//	> .locks      # locks of the current transaction
//	> .commit     # commit (and release)
//	> .help
//
// Flags: -rule4prime enables authorization cooperation (the shell's
// transaction may then modify "cells" but not "effectors"); -deadlock
// selects the deadlock policy (detect, waitdie, none); -obs starts the
// observability HTTP endpoint on the given address.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/obs"
	"colock/internal/query"
	"colock/internal/store"
	"colock/internal/txn"
)

type shell struct {
	st    *store.Store
	proto *core.Protocol
	mgr   *txn.Manager
	exec  *query.Executor
	auth  *authz.Table
	prime bool
	tx    *txn.Txn
	out   *bufio.Writer
	trace *traceRing
	col   *obs.Collector
}

// traceRing keeps the most recent lock-manager events for the .trace
// command. The OnEvent hook runs outside the manager's shard latches, so
// the ring only needs its own small mutex.
type traceRing struct {
	mu  sync.Mutex
	buf []lock.Event
	cap int
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{cap: capacity}
}

func (t *traceRing) add(e lock.Event) {
	t.mu.Lock()
	t.buf = append(t.buf, e)
	if len(t.buf) > t.cap {
		t.buf = t.buf[len(t.buf)-t.cap:]
	}
	t.mu.Unlock()
}

func (t *traceRing) snapshot() []lock.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]lock.Event(nil), t.buf...)
}

// newShell builds a fully wired shell (shared by main and the tests): the
// lock manager's event stream feeds both the .trace ring (OnEvent hook) and
// the obs collector (sink), composed without double-buffering.
func newShell(prime bool, policy lock.Policy, out *bufio.Writer) *shell {
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	opts := core.Options{}
	if prime {
		opts = core.Options{Rule4Prime: true, Authorizer: auth}
	}
	trace := newTraceRing(64)
	col := obs.NewCollector(obs.Options{
		KindLabels: core.UnitKindLabels,
		KindOf:     core.UnitKindOf(nm),
	})
	mgr := lock.NewManager(lock.Options{
		Policy:  policy,
		OnEvent: trace.add,
		Sinks:   []lock.EventSink{col},
	})
	proto := core.NewProtocol(mgr, st, nm, opts)
	tm := txn.NewManager(proto, st)
	return &shell{
		st: st, proto: proto, mgr: tm,
		exec: query.NewExecutor(tm, core.PlannerOptions{}),
		auth: auth, prime: prime,
		out:   out,
		trace: trace,
		col:   col,
	}
}

func parsePolicy(name string) (lock.Policy, error) {
	switch name {
	case "detect":
		return lock.PolicyDetect, nil
	case "waitdie":
		return lock.PolicyWaitDie, nil
	case "none":
		return lock.PolicyNone, nil
	}
	return lock.PolicyDetect, fmt.Errorf("unknown deadlock policy %q (detect, waitdie, none)", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("colockshell: ")
	prime := flag.Bool("rule4prime", true, "enable authorization cooperation (rule 4')")
	deadlock := flag.String("deadlock", "detect", "deadlock policy: detect, waitdie or none")
	obsAddr := flag.String("obs", "", "serve the observability HTTP endpoint on this address (e.g. 127.0.0.1:8023)")
	flag.Parse()

	policy, err := parsePolicy(*deadlock)
	if err != nil {
		log.Fatal(err)
	}
	s := newShell(*prime, policy, bufio.NewWriter(os.Stdout))
	defer s.out.Flush()

	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, s.proto.Manager(), s.col, s.proto.WriteMetrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(s.out, "observability endpoint on http://%s/ (/metrics, /queues, /dot)\n", srv.Addr())
	}

	fmt.Fprintln(s.out, "colock shell over the paper's example database (Figures 1/6).")
	fmt.Fprintln(s.out, "Enter HDBL queries or .help; rule 4' is", map[bool]string{true: "ON", false: "OFF"}[*prime])
	s.repl(bufio.NewScanner(os.Stdin))
}

func (s *shell) repl(in *bufio.Scanner) {
	for {
		s.out.WriteString("> ")
		s.out.Flush()
		if !in.Scan() {
			s.quit()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			s.quit()
			return
		case line == ".help":
			s.help()
		case line == ".locks":
			s.showLocks()
		case line == ".trace":
			s.showTrace()
		case line == ".metrics":
			s.showMetrics()
		case strings.HasPrefix(line, ".queues"):
			s.showQueues(strings.TrimSpace(strings.TrimPrefix(line, ".queues")) == "all")
		case line == ".dot":
			s.showDOT()
		case line == ".commit":
			s.finish(true)
		case line == ".abort":
			s.finish(false)
		case line == ".db":
			s.showDB()
		case strings.HasPrefix(line, ".graph"):
			s.showGraph(strings.TrimSpace(strings.TrimPrefix(line, ".graph")))
		case strings.HasPrefix(line, ".units"):
			s.showUnits(strings.Fields(strings.TrimPrefix(line, ".units")))
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(s.out, "unknown command %q (try .help)\n", line)
		case strings.HasPrefix(strings.ToUpper(line), "CREATE"):
			s.runCreate(line)
		default:
			s.runQuery(line)
		}
	}
}

func (s *shell) help() {
	fmt.Fprint(s.out, `Queries:  SELECT v FROM v IN <relation>[, w IN v.<attr>...]
          [WHERE v.<attr> = 'lit' [AND ...]] [FOR READ|FOR UPDATE] [NOFOLLOW]
          UPDATE v SET <attr> = lit[, ...] FROM ... [WHERE ...] [NOFOLLOW]
          DELETE v FROM ... [WHERE ...] [NOFOLLOW]
          INSERT INTO <relation> VALUE {attr: lit, c: SET(id: {...}), r: REF(rel, 'key')}
          CREATE RELATION <name> IN SEGMENT <seg> KEY <attr> {attr: type, ...}
Commands: .locks   show locks of the current transaction
          .trace   show recent lock-manager events (grant/wait/convert/release/victim)
          .metrics lock-manager and protocol telemetry (latencies, counters)
          .queues [all]  live lock queues (contended only, or all)
          .dot     waits-for graph in Graphviz DOT format
          .graph <relation>       object-specific lock graph (Fig. 5)
          .units <relation> <key> unit decomposition (Fig. 6)
          .commit  commit the current transaction (releases locks)
          .abort   abort the current transaction
          .db      show the database contents
          .quit    leave
A transaction starts implicitly with the first query.
`)
}

func (s *shell) ensureTx() *txn.Txn {
	if s.tx == nil || s.tx.State() != txn.Active {
		s.tx = s.mgr.Begin()
		if s.prime {
			s.auth.Grant(s.tx.ID(), "cells") // shell user may modify cells, not effectors
		}
		fmt.Fprintf(s.out, "-- began transaction %d\n", s.tx.ID())
	}
	return s.tx
}

func (s *shell) runCreate(src string) {
	stmt, err := query.ParseCreate(src)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	if err := stmt.Apply(s.st.Catalog()); err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(s.out, "-- created relation %s (segment %s, key %s)\n",
		stmt.Relation.Name, stmt.Relation.Segment, stmt.Relation.Key)
}

func (s *shell) runQuery(src string) {
	tx := s.ensureTx()
	before := len(s.proto.Manager().HeldLocks(tx.ID()))
	res, err := s.exec.RunStatement(tx, src)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	if res.Kind != query.StmtInsert {
		fmt.Fprintf(s.out, "-- %s\n", res.Plan)
	}
	for _, r := range res.Results {
		fmt.Fprintf(s.out, "%s = %s\n", r.Path, r.Value)
	}
	switch res.Kind {
	case query.StmtSelect:
		fmt.Fprintf(s.out, "-- %d result(s); new locks:\n", len(res.Results))
	default:
		fmt.Fprintf(s.out, "-- %d affected; new locks:\n", res.Affected)
	}
	held := s.proto.Manager().HeldLocks(tx.ID())
	for i := before; i < len(held); i++ {
		fmt.Fprintf(s.out, "   %-4s %s\n", held[i].Mode, held[i].Resource)
	}
}

func (s *shell) showLocks() {
	if s.tx == nil || s.tx.State() != txn.Active {
		fmt.Fprintln(s.out, "no active transaction")
		return
	}
	held := s.proto.Manager().HeldLocks(s.tx.ID())
	if len(held) == 0 {
		fmt.Fprintln(s.out, "no locks held")
		return
	}
	for _, h := range held {
		fmt.Fprintf(s.out, "%-4s %s\n", h.Mode, h.Resource)
	}
}

func (s *shell) showTrace() {
	if s.trace == nil {
		fmt.Fprintln(s.out, "tracing not enabled")
		return
	}
	evs := s.trace.snapshot()
	if len(evs) == 0 {
		fmt.Fprintln(s.out, "no lock events yet")
		return
	}
	for _, e := range evs {
		fmt.Fprintf(s.out, "%-8s txn %-3d %-4s %s\n", e.Kind, e.Txn, e.Mode, e.Resource)
	}
}

func (s *shell) showMetrics() {
	m := s.proto.Manager()
	st := m.Stats()

	ops := metrics.NewTable("Lock-manager counters", "counter", "value")
	for _, kv := range []struct {
		name string
		val  uint64
	}{
		{"requests", st.Requests}, {"regrants", st.Regrants},
		{"grants", st.Grants}, {"conversions", st.Conversions},
		{"conflicts", st.Conflicts}, {"waits", st.Waits},
		{"deadlocks", st.Deadlocks}, {"releases", st.Releases},
	} {
		ops.Addf(kv.name, kv.val)
	}
	ops.Addf("max table size", st.MaxTableSize)
	ops.Addf("active txns", m.ActiveTxns())
	ops.Addf("waiting txns", m.WaitingTxns())
	fmt.Fprint(s.out, ops)

	ps := s.proto.Stats()
	rules := metrics.NewTable("Protocol rule applications", "rule", "count")
	rules.Addf("requests", ps.Requests)
	rules.Addf("upward locks (1-4, order 5)", ps.UpwardLocks)
	rules.Addf("downward propagations (3/4)", ps.DownwardPropagations)
	rules.Addf("rule 4' weakened to S", ps.Rule4PrimeWeakened)
	rules.Addf("memo hits", ps.MemoHits)
	rules.Addf("no-follow requests", ps.NoFollow)
	fmt.Fprintf(s.out, "\n%s", rules)

	lat := metrics.NewTable("Latencies by op, mode and unit kind",
		"op", "mode", "unit", "count", "p50", "p95", "p99", "max")
	views := s.col.Histograms()
	for _, v := range views {
		lat.Addf(v.Op.String(), v.Mode.String(), v.Kind, v.Snap.Count,
			v.Snap.Quantile(0.50), v.Snap.Quantile(0.95), v.Snap.Quantile(0.99), v.Snap.Max)
	}
	if len(views) == 0 {
		fmt.Fprintln(s.out, "\nno latency observations yet")
		return
	}
	fmt.Fprintf(s.out, "\n%s", lat)
}

func (s *shell) showQueues(all bool) {
	qs := s.proto.Manager().SnapshotQueues()
	shown := 0
	for _, q := range qs {
		if !all && !q.Contended() {
			continue
		}
		shown++
		fmt.Fprintf(s.out, "%s (shard %d)\n", q.Resource, q.Shard)
		for _, g := range q.Granted {
			durable := ""
			if g.Durable {
				durable = " durable"
			}
			fmt.Fprintf(s.out, "  granted txn %-3d %s%s\n", g.Txn, g.Mode, durable)
		}
		for _, w := range q.Waiting {
			convert := ""
			if w.Convert {
				convert = " (conversion)"
			}
			fmt.Fprintf(s.out, "  waiting txn %-3d %s%s\n", w.Txn, w.Mode, convert)
		}
	}
	if shown == 0 {
		if all {
			fmt.Fprintln(s.out, "lock table is empty")
		} else {
			fmt.Fprintln(s.out, "no contended resources (.queues all shows every entry)")
		}
	}
}

func (s *shell) showDOT() {
	fmt.Fprint(s.out, s.proto.Manager().WaitsForDOT())
}

func (s *shell) showGraph(relation string) {
	if relation == "" {
		fmt.Fprintln(s.out, "usage: .graph <relation>")
		return
	}
	g, err := core.DeriveGraph(s.st.Catalog(), relation)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprint(s.out, g.Render())
}

func (s *shell) showUnits(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(s.out, "usage: .units <relation> <key>")
		return
	}
	nm := core.NewNamer(s.st.Catalog(), false)
	u, err := core.ComputeUnits(s.st, nm, store.P(args[0], args[1]))
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(s.out, "outer unit: %d nodes\n", len(u.OuterNodes))
	for _, iu := range u.Inner {
		fmt.Fprintf(s.out, "inner unit %s (depth %d), referenced from:\n", iu.EntryPoint, iu.Depth)
		for _, r := range iu.ReferencedFrom {
			fmt.Fprintf(s.out, "  o-> %s\n", r)
		}
	}
}

func (s *shell) showDB() {
	for _, rel := range s.st.Catalog().Relations() {
		fmt.Fprintf(s.out, "relation %s:\n", rel.Name)
		for _, key := range s.st.Keys(rel.Name) {
			fmt.Fprintf(s.out, "  %s = %s\n", key, s.st.Get(rel.Name, key))
		}
	}
}

func (s *shell) finish(commit bool) {
	if s.tx == nil || s.tx.State() != txn.Active {
		fmt.Fprintln(s.out, "no active transaction")
		return
	}
	if commit {
		if err := s.tx.Commit(); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(s.out, "-- committed transaction %d\n", s.tx.ID())
	} else {
		s.tx.Abort()
		fmt.Fprintf(s.out, "-- aborted transaction %d\n", s.tx.ID())
	}
	s.tx = nil
}

func (s *shell) quit() {
	if s.tx != nil && s.tx.State() == txn.Active {
		s.tx.Abort()
		fmt.Fprintln(s.out, "-- aborted open transaction")
	}
	fmt.Fprintln(s.out, "bye")
}
