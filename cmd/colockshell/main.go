// Command colockshell is an interactive query shell over the paper's
// example database with live lock tracing: every HDBL query is executed
// through the planner and the lock protocol, and the shell shows which
// locks were requested, in which modes, and the chosen plan granule.
//
//	$ colockshell
//	> SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
//	...
//	> .locks      # locks of the current transaction
//	> .commit     # commit (and release)
//	> .help
//
// Flags: -rule4prime enables authorization cooperation (the shell's
// transaction may then modify "cells" but not "effectors").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/query"
	"colock/internal/store"
	"colock/internal/txn"
)

type shell struct {
	st    *store.Store
	proto *core.Protocol
	mgr   *txn.Manager
	exec  *query.Executor
	auth  *authz.Table
	prime bool
	tx    *txn.Txn
	out   *bufio.Writer
	trace *traceRing
}

// traceRing keeps the most recent lock-manager events for the .trace
// command. The OnEvent hook runs outside the manager's shard latches, so
// the ring only needs its own small mutex.
type traceRing struct {
	mu  sync.Mutex
	buf []lock.Event
	cap int
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{cap: capacity}
}

func (t *traceRing) add(e lock.Event) {
	t.mu.Lock()
	t.buf = append(t.buf, e)
	if len(t.buf) > t.cap {
		t.buf = t.buf[len(t.buf)-t.cap:]
	}
	t.mu.Unlock()
}

func (t *traceRing) snapshot() []lock.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]lock.Event(nil), t.buf...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("colockshell: ")
	prime := flag.Bool("rule4prime", true, "enable authorization cooperation (rule 4')")
	flag.Parse()

	st := store.PaperDatabase()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	opts := core.Options{}
	if *prime {
		opts = core.Options{Rule4Prime: true, Authorizer: auth}
	}
	trace := newTraceRing(64)
	proto := core.NewProtocol(lock.NewManager(lock.Options{OnEvent: trace.add}), st, nm, opts)
	mgr := txn.NewManager(proto, st)

	s := &shell{
		st: st, proto: proto, mgr: mgr,
		exec: query.NewExecutor(mgr, core.PlannerOptions{}),
		auth: auth, prime: *prime,
		out:   bufio.NewWriter(os.Stdout),
		trace: trace,
	}
	defer s.out.Flush()

	fmt.Fprintln(s.out, "colock shell over the paper's example database (Figures 1/6).")
	fmt.Fprintln(s.out, "Enter HDBL queries or .help; rule 4' is", map[bool]string{true: "ON", false: "OFF"}[*prime])
	s.repl(bufio.NewScanner(os.Stdin))
}

func (s *shell) repl(in *bufio.Scanner) {
	for {
		s.out.WriteString("> ")
		s.out.Flush()
		if !in.Scan() {
			s.quit()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			s.quit()
			return
		case line == ".help":
			s.help()
		case line == ".locks":
			s.showLocks()
		case line == ".trace":
			s.showTrace()
		case line == ".commit":
			s.finish(true)
		case line == ".abort":
			s.finish(false)
		case line == ".db":
			s.showDB()
		case strings.HasPrefix(line, ".graph"):
			s.showGraph(strings.TrimSpace(strings.TrimPrefix(line, ".graph")))
		case strings.HasPrefix(line, ".units"):
			s.showUnits(strings.Fields(strings.TrimPrefix(line, ".units")))
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(s.out, "unknown command %q (try .help)\n", line)
		case strings.HasPrefix(strings.ToUpper(line), "CREATE"):
			s.runCreate(line)
		default:
			s.runQuery(line)
		}
	}
}

func (s *shell) help() {
	fmt.Fprint(s.out, `Queries:  SELECT v FROM v IN <relation>[, w IN v.<attr>...]
          [WHERE v.<attr> = 'lit' [AND ...]] [FOR READ|FOR UPDATE] [NOFOLLOW]
          UPDATE v SET <attr> = lit[, ...] FROM ... [WHERE ...] [NOFOLLOW]
          DELETE v FROM ... [WHERE ...] [NOFOLLOW]
          INSERT INTO <relation> VALUE {attr: lit, c: SET(id: {...}), r: REF(rel, 'key')}
          CREATE RELATION <name> IN SEGMENT <seg> KEY <attr> {attr: type, ...}
Commands: .locks   show locks of the current transaction
          .trace   show recent lock-manager events (grant/wait/convert/release/victim)
          .graph <relation>       object-specific lock graph (Fig. 5)
          .units <relation> <key> unit decomposition (Fig. 6)
          .commit  commit the current transaction (releases locks)
          .abort   abort the current transaction
          .db      show the database contents
          .quit    leave
A transaction starts implicitly with the first query.
`)
}

func (s *shell) ensureTx() *txn.Txn {
	if s.tx == nil || s.tx.State() != txn.Active {
		s.tx = s.mgr.Begin()
		if s.prime {
			s.auth.Grant(s.tx.ID(), "cells") // shell user may modify cells, not effectors
		}
		fmt.Fprintf(s.out, "-- began transaction %d\n", s.tx.ID())
	}
	return s.tx
}

func (s *shell) runCreate(src string) {
	stmt, err := query.ParseCreate(src)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	if err := stmt.Apply(s.st.Catalog()); err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(s.out, "-- created relation %s (segment %s, key %s)\n",
		stmt.Relation.Name, stmt.Relation.Segment, stmt.Relation.Key)
}

func (s *shell) runQuery(src string) {
	tx := s.ensureTx()
	before := len(s.proto.Manager().HeldLocks(tx.ID()))
	res, err := s.exec.RunStatement(tx, src)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	if res.Kind != query.StmtInsert {
		fmt.Fprintf(s.out, "-- %s\n", res.Plan)
	}
	for _, r := range res.Results {
		fmt.Fprintf(s.out, "%s = %s\n", r.Path, r.Value)
	}
	switch res.Kind {
	case query.StmtSelect:
		fmt.Fprintf(s.out, "-- %d result(s); new locks:\n", len(res.Results))
	default:
		fmt.Fprintf(s.out, "-- %d affected; new locks:\n", res.Affected)
	}
	held := s.proto.Manager().HeldLocks(tx.ID())
	for i := before; i < len(held); i++ {
		fmt.Fprintf(s.out, "   %-4s %s\n", held[i].Mode, held[i].Resource)
	}
}

func (s *shell) showLocks() {
	if s.tx == nil || s.tx.State() != txn.Active {
		fmt.Fprintln(s.out, "no active transaction")
		return
	}
	held := s.proto.Manager().HeldLocks(s.tx.ID())
	if len(held) == 0 {
		fmt.Fprintln(s.out, "no locks held")
		return
	}
	for _, h := range held {
		fmt.Fprintf(s.out, "%-4s %s\n", h.Mode, h.Resource)
	}
}

func (s *shell) showTrace() {
	if s.trace == nil {
		fmt.Fprintln(s.out, "tracing not enabled")
		return
	}
	evs := s.trace.snapshot()
	if len(evs) == 0 {
		fmt.Fprintln(s.out, "no lock events yet")
		return
	}
	for _, e := range evs {
		fmt.Fprintf(s.out, "%-8s txn %-3d %-4s %s\n", e.Kind, e.Txn, e.Mode, e.Resource)
	}
}

func (s *shell) showGraph(relation string) {
	if relation == "" {
		fmt.Fprintln(s.out, "usage: .graph <relation>")
		return
	}
	g, err := core.DeriveGraph(s.st.Catalog(), relation)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprint(s.out, g.Render())
}

func (s *shell) showUnits(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(s.out, "usage: .units <relation> <key>")
		return
	}
	nm := core.NewNamer(s.st.Catalog(), false)
	u, err := core.ComputeUnits(s.st, nm, store.P(args[0], args[1]))
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(s.out, "outer unit: %d nodes\n", len(u.OuterNodes))
	for _, iu := range u.Inner {
		fmt.Fprintf(s.out, "inner unit %s (depth %d), referenced from:\n", iu.EntryPoint, iu.Depth)
		for _, r := range iu.ReferencedFrom {
			fmt.Fprintf(s.out, "  o-> %s\n", r)
		}
	}
}

func (s *shell) showDB() {
	for _, rel := range s.st.Catalog().Relations() {
		fmt.Fprintf(s.out, "relation %s:\n", rel.Name)
		for _, key := range s.st.Keys(rel.Name) {
			fmt.Fprintf(s.out, "  %s = %s\n", key, s.st.Get(rel.Name, key))
		}
	}
}

func (s *shell) finish(commit bool) {
	if s.tx == nil || s.tx.State() != txn.Active {
		fmt.Fprintln(s.out, "no active transaction")
		return
	}
	if commit {
		if err := s.tx.Commit(); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(s.out, "-- committed transaction %d\n", s.tx.ID())
	} else {
		s.tx.Abort()
		fmt.Fprintf(s.out, "-- aborted transaction %d\n", s.tx.ID())
	}
	s.tx = nil
}

func (s *shell) quit() {
	if s.tx != nil && s.tx.State() == txn.Active {
		s.tx.Abort()
		fmt.Fprintln(s.out, "-- aborted open transaction")
	}
	fmt.Fprintln(s.out, "bye")
}
