package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colock/internal/health"
	"colock/internal/lock"
)

// TestShellHealthCommands drives the .health/.topk surface through the repl:
// a storm feeds the monitor (the storm's retry observer is teed into it),
// then the verdict, the JSON document, the dump file (the healthmon-smoke
// contract), and the top-K table are all produced.
func TestShellHealthCommands(t *testing.T) {
	s, buf := newTestShellPolicy(t, false, lock.PolicyWaitDie)
	dump := filepath.Join(t.TempDir(), "health.json")
	runScript(t, s,
		`.storm 4 10`,
		`.health`,
		`.health json`,
		`.health dump `+dump,
		`.topk 5`,
		`.health auto on`,
		`.health auto off`,
		`.health bogus`,
		`.quit`,
	)
	out := buf.String()
	for _, want := range []string{
		"health: ",           // verdict line
		`"state"`,            // .health json
		"written to " + dump, // .health dump
		"auto-admission on",  // .health auto on
		"auto-admission off", // .health auto off
		"usage: .health",     // bad subcommand
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}

	// The dump parses as a health.Report and carries the storm's hot key —
	// the same assertions the healthmon-smoke gate runs externally.
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var rep health.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if rep.State != "ok" && rep.State != "warn" && rep.State != "critical" {
		t.Fatalf("bad verdict %q", rep.State)
	}
	found := false
	for _, e := range rep.TopK {
		if strings.Contains(e.Resource, "cells/c1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("storm hot key missing from dumped top-K: %+v", rep.TopK)
	}
	if !strings.Contains(out, "cells/c1") {
		t.Errorf(".topk table misses the hot key:\n%s", out)
	}

	// Windowed retry counts flowed through the teed observer.
	sawRetries := rep.Current.Counts["retries"]
	for _, w := range rep.Windows {
		sawRetries += w.Counts["retries"]
	}
	if sawRetries == 0 {
		t.Error("no retries recorded in any health window despite the storm")
	}
}

// TestShellResetCascade pins the satellite fix: one Manager.ResetStats call
// zeroes every counter surface the shell wires — manager stats, protocol
// rules, the retry collector, and the health monitor.
func TestShellResetCascade(t *testing.T) {
	s, _ := newTestShellPolicy(t, false, lock.PolicyWaitDie)
	runScript(t, s, `.storm 4 5`, `.quit`)

	if s.retry.Attempts().Commits == 0 {
		t.Fatal("storm produced no commits to reset")
	}
	rep := s.healthSnapshot()
	if rep.Current.Counts["acquires"] == 0 && len(rep.Windows) == 0 {
		t.Fatal("storm left no health data to reset")
	}

	s.proto.Manager().ResetStats()

	if got := s.retry.Attempts(); got.Commits != 0 || got.GiveUps != 0 {
		t.Errorf("retry collector survived ResetStats: %+v", got)
	}
	if st := s.proto.Manager().Stats(); st.Grants != 0 {
		t.Errorf("manager grants survived ResetStats: %d", st.Grants)
	}
	if ps := s.proto.Stats(); ps.Requests != 0 {
		t.Errorf("protocol rule counters survived ResetStats: %+v", ps)
	}
	rep = s.mon.Report(0)
	if len(rep.Windows) != 0 || len(rep.TopK) != 0 {
		t.Errorf("health monitor survived ResetStats: %d windows, %d topk rows",
			len(rep.Windows), len(rep.TopK))
	}
	for name, c := range rep.Current.Counts {
		if c != 0 {
			t.Errorf("health current window %s = %d after ResetStats", name, c)
		}
	}
}
