package main

import (
	"strings"
	"testing"

	"colock/internal/health"
)

func TestSparkline(t *testing.T) {
	cases := []struct {
		in   []uint64
		want string
	}{
		{[]uint64{0, 0, 0}, "▁▁▁"},
		{[]uint64{7}, "█"},
		{[]uint64{0, 7, 14}, "▁▅█"}, // ceil scaling: 7/14 → tick 4
		{[]uint64{1, 1000}, "▂█"},   // ceil keeps tiny non-zero visible
		{[]uint64{}, ""},
	}
	for _, c := range cases {
		if got := sparkline(c.in); got != c.want {
			t.Errorf("sparkline(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// Every output rune is from the ramp.
	for _, r := range sparkline([]uint64{1, 2, 3, 4, 5, 6, 7, 8}) {
		if !strings.ContainsRune(string(sparkTicks), r) {
			t.Errorf("unexpected rune %q", r)
		}
	}
}

func TestSparklineNonZeroVisible(t *testing.T) {
	// A tiny non-zero next to a huge max must not collapse to the floor
	// tick — operators read the floor as "nothing happened".
	got := sparkline([]uint64{1, 1 << 40})
	if got[:len("▁")] == "▁" {
		t.Errorf("non-zero value rendered as the zero tick: %q", got)
	}
}

func sampleReport() health.Report {
	counts := func(acq, blocks, wd uint64) map[string]uint64 {
		return map[string]uint64{
			"acquires": acq, "fast_path_hits": acq / 2, "blocks": blocks,
			"victims": 0, "wait_die": wd, "timeouts": 0, "sheds": 0, "retries": wd,
		}
	}
	return health.Report{
		State:        "warn",
		Reason:       "abort rate 0.120 > 0.050",
		BreachStreak: 1,
		WindowMs:     1000,
		Windows: []health.WindowView{
			{Epoch: 0, Counts: counts(100, 5, 1)},
			{Epoch: 1, Counts: counts(400, 40, 60)},
		},
		Current: health.WindowView{
			Epoch: 2, Counts: counts(10, 1, 0),
			WaitCount: 41, WaitP50Ms: 0.2, WaitP95Ms: 1.5, WaitP99Ms: 3.25, WaitMaxMs: 9,
		},
		TopK: []health.TopKView{
			{Resource: "db1/seg1/cells/c1/robots/r1/trajectory", Mode: "X", Count: 61, MaxErr: 0},
			{Resource: "db1/seg2/effectors/e1", Mode: "S", Count: 4, MaxErr: 1},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	var b strings.Builder
	render(&b, sampleReport(), false)
	out := b.String()
	for _, want := range []string{
		"warn",
		"abort rate 0.120 > 0.050",
		"rates over 2 closed window(s) + current:",
		"acquires",
		"retries",
		"p99=3.25ms",
		"cells/c1/robots/r1/trajectory",
		"61",
		"±1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame misses %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("color off still produced ANSI escapes")
	}
	// Sparklines present: at least one non-floor tick from the busy series.
	if !strings.ContainsRune(out, '█') {
		t.Errorf("no full tick in frame:\n%s", out)
	}
}

func TestRenderColorAndEmptyTopK(t *testing.T) {
	rep := sampleReport()
	rep.State = "critical"
	rep.TopK = nil
	var b strings.Builder
	render(&b, rep, true)
	out := b.String()
	if !strings.Contains(out, "\x1b[31;1m") {
		t.Errorf("critical verdict not red:\n%q", out)
	}
	if !strings.Contains(out, "(no contention recorded)") {
		t.Errorf("empty top-K not handled:\n%s", out)
	}
}
