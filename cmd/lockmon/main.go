// Command lockmon is a live terminal dashboard over a colock /health
// endpoint: it polls the lock-health monitor (each poll also advances the
// monitor's window clock — polling IS the clock) and renders the SLO
// verdict, sparkline rate series over the retained windows, windowed wait
// latency, and the top-K contended resources.
//
//	$ colockshell -obs 127.0.0.1:8023   # in one terminal
//	$ lockmon -addr 127.0.0.1:8023      # in another
//
// Flags: -addr is the observability endpoint; -interval the poll period;
// -n limits the number of polls (0 = until interrupted); -once polls a
// single time and prints without taking over the screen (script-friendly).
//
// With -replay <journal-dir> lockmon needs no live endpoint at all: it
// replays a durable lock-event journal (colockshell -journal) through a
// fresh health monitor and renders the dashboard the live monitor would
// have shown at the end of the recording — the same panels, grading the
// past.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"colock/internal/health"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lockmon: ")
	addr := flag.String("addr", "127.0.0.1:8023", "observability endpoint host:port (colockshell -obs)")
	interval := flag.Duration("interval", time.Second, "poll period")
	polls := flag.Int("n", 0, "stop after this many polls (0 = run until interrupted)")
	once := flag.Bool("once", false, "poll once, print, exit (no screen takeover)")
	replay := flag.String("replay", "", "render a journal directory instead of polling (offline mode)")
	window := flag.Duration("window", time.Second, "window width for -replay")
	flag.Parse()

	if *replay != "" {
		rep, err := replayReport(*replay, *window)
		if err != nil {
			log.Fatal(err)
		}
		render(os.Stdout, rep, false)
		return
	}

	url := "http://" + *addr + "/health"
	client := &http.Client{Timeout: 5 * time.Second}
	if *once {
		*polls = 1
	}
	for i := 0; *polls == 0 || i < *polls; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		rep, err := fetchReport(client, url)
		if err != nil {
			log.Fatal(err)
		}
		if !*once {
			// Home the cursor and clear to end of screen: repaint without
			// flicker, leaving scrollback alone.
			fmt.Print("\x1b[H\x1b[2J")
		}
		render(os.Stdout, rep, !*once)
	}
}

// fetchReport polls one /health document.
func fetchReport(c *http.Client, url string) (health.Report, error) {
	var rep health.Report
	resp, err := c.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return rep, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("decode %s: %w", url, err)
	}
	return rep, nil
}
