package main

import (
	"strings"
	"testing"
	"time"

	"colock/internal/journal"
	"colock/internal/lock"
)

// TestReplayReport writes a victim-heavy journal and checks the offline
// dashboard: the replayed monitor grades the recording critical, the hot
// key surfaces in the top-K panel, and the render pipeline accepts the
// replayed report unchanged.
func TestReplayReport(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	hot := lock.Resource("db1/seg1/cells/c1/robots/r1/trajectory")
	txn := lock.TxnID(0)
	for win := 0; win < 4; win++ {
		t0 := base.Add(time.Duration(win) * time.Second)
		for i := 0; i < 5; i++ {
			txn++
			jw.Record(lock.Event{Kind: "wait", Txn: txn, Resource: hot, Mode: lock.X, At: t0.Add(time.Duration(i) * time.Millisecond)})
			jw.Record(lock.Event{Kind: "victim", Txn: txn, Resource: hot, Mode: lock.X, At: t0.Add(time.Duration(i)*time.Millisecond + 500*time.Microsecond), Dur: 500 * time.Microsecond})
		}
		txn++
		jw.Record(lock.Event{Kind: "grant", Txn: txn, Resource: hot, Mode: lock.X, At: t0.Add(10 * time.Millisecond)})
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := replayReport(dir, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != "critical" {
		t.Fatalf("replayed state = %q, want critical (abort rate 5/6 per window)", rep.State)
	}
	if len(rep.Windows) == 0 {
		t.Fatal("replayed report has no closed windows")
	}
	if len(rep.TopK) == 0 || !strings.Contains(rep.TopK[0].Resource, "cells/c1") {
		t.Fatalf("top-K = %+v, want the hot trajectory leaf first", rep.TopK)
	}
	var sb strings.Builder
	render(&sb, rep, false)
	out := sb.String()
	if !strings.Contains(out, "critical") || !strings.Contains(out, "cells/c1") {
		t.Errorf("rendered replay missing verdict or hot key:\n%s", out)
	}
}

// TestReplayReportEmptyDir pins the error path for a journal with nothing
// in it.
func TestReplayReportEmptyDir(t *testing.T) {
	if _, err := replayReport(t.TempDir(), time.Second); err == nil {
		t.Fatal("empty journal dir replayed without error")
	}
}
