package main

// Pure rendering: health.Report in, ANSI text out. Kept free of I/O and
// time so the dashboard is unit-testable; main only decides when to poll
// and whether to clear the screen.

import (
	"fmt"
	"io"
	"time"

	"colock/internal/health"
)

// sparkTicks is the classic 8-level block ramp.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline scales vals into the block ramp; the scale is per-series (max
// value maps to the tallest block). All-zero series render as a flat line.
func sparkline(vals []uint64) string {
	var max uint64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		if max == 0 {
			out[i] = sparkTicks[0]
			continue
		}
		// Round up so any non-zero value is visibly above the floor.
		idx := int((v*uint64(len(sparkTicks)-1) + max - 1) / max)
		out[i] = sparkTicks[idx]
	}
	return string(out)
}

// ansi wraps s in an SGR color when color is on.
func ansi(color bool, code, s string) string {
	if !color {
		return s
	}
	return "\x1b[" + code + "m" + s + "\x1b[0m"
}

// stateColor maps the verdict to green/yellow/red.
func stateColor(state string) string {
	switch state {
	case "ok":
		return "32;1"
	case "warn":
		return "33;1"
	case "critical":
		return "31;1"
	}
	return "0"
}

// rateSeries extracts one rate's value per retained window (oldest first),
// ending with the still-open window.
func rateSeries(rep health.Report, rate string) []uint64 {
	out := make([]uint64, 0, len(rep.Windows)+1)
	for _, w := range rep.Windows {
		out = append(out, w.Counts[rate])
	}
	return append(out, rep.Current.Counts[rate])
}

// renderRates lists every rate the monitor tracks, in display order.
var renderRates = []string{
	"acquires", "fast_path_hits", "blocks", "victims",
	"wait_die", "timeouts", "sheds", "retries",
}

// render paints one full dashboard frame.
func render(w io.Writer, rep health.Report, color bool) {
	verdict := ansi(color, stateColor(rep.State), fmt.Sprintf("%-8s", rep.State))
	fmt.Fprintf(w, "lockmon  %s  window=%v  waiters=%d  breach=%d clean=%d\n",
		verdict, time.Duration(rep.WindowMs*float64(time.Millisecond)),
		rep.WaiterDepth, rep.BreachStreak, rep.CleanStreak)
	if rep.Reason != "" {
		fmt.Fprintf(w, "  %s\n", ansi(color, "33", rep.Reason))
	}
	fmt.Fprintf(w, "\nrates over %d closed window(s) + current:\n", len(rep.Windows))
	for _, rate := range renderRates {
		series := rateSeries(rep, rate)
		last := series[len(series)-1]
		fmt.Fprintf(w, "  %-15s %s  %d\n", rate, sparkline(series), last)
	}

	cur := rep.Current
	fmt.Fprintf(w, "\nwait latency (current window, %d waits): p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		cur.WaitCount, cur.WaitP50Ms, cur.WaitP95Ms, cur.WaitP99Ms, cur.WaitMaxMs)

	fmt.Fprintf(w, "\nhottest resources (decayed counts):\n")
	if len(rep.TopK) == 0 {
		fmt.Fprintf(w, "  (no contention recorded)\n")
		return
	}
	for i, e := range rep.TopK {
		fmt.Fprintf(w, "  %2d. %-48s %-4s %6d ±%d\n", i+1, e.Resource, e.Mode, e.Count, e.MaxErr)
	}
}
