package main

import (
	"fmt"
	"time"

	"colock/internal/health"
	"colock/internal/journal"
)

// replayReport builds the health report a live monitor would have served at
// the end of the journal: a fresh monitor anchored at the recording's first
// timestamp consumes every event, its window clock advanced along the
// events' own timestamps, and the final report renders through the same
// panels as a live poll. The SLO thresholds mirror colockshell's defaults,
// so the offline verdict is comparable to the live one.
func replayReport(dir string, window time.Duration) (health.Report, error) {
	if window <= 0 {
		window = time.Second
	}
	recs, torn, err := journal.ReadAll(dir)
	if err != nil {
		return health.Report{}, err
	}
	if len(recs) == 0 {
		return health.Report{}, fmt.Errorf("journal %s is empty", dir)
	}
	var first, last time.Time
	for i := range recs {
		if at := recs[i].At; !at.IsZero() {
			if first.IsZero() {
				first = at
			}
			if at.After(last) {
				last = at
			}
		}
	}
	if first.IsZero() {
		return health.Report{}, fmt.Errorf("journal %s has no timestamped records", dir)
	}
	retain := int(last.Sub(first)/window) + 2
	if retain > 100000 {
		retain = 100000
	}
	mon := health.NewMonitor(health.Options{
		Window: window,
		Retain: retain,
		SLO: health.SLO{
			MaxAbortRate:   0.05,
			MaxWaitP99:     250 * time.Millisecond,
			MaxWaiterDepth: 64,
		},
		Start: first,
	})
	for i := range recs {
		rec := recs[i]
		switch rec.Kind {
		case "fastpath":
			mon.RecordFastPathHit()
			continue
		case "health", "reset":
			continue
		}
		mon.Record(rec.Event())
		if !rec.At.IsZero() {
			mon.Advance(rec.At)
		}
	}
	mon.Advance(last.Add(window))
	rep := mon.Report(10)
	if torn {
		rep.Reason = joinReason(rep.Reason, "journal tail torn (crash mid-append)")
	}
	return rep, nil
}

// joinReason appends a note to a possibly-empty reason string.
func joinReason(reason, note string) string {
	if reason == "" {
		return note
	}
	return reason + "; " + note
}
