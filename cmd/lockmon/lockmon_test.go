package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"colock/internal/health"
	"colock/internal/lock"
	"colock/internal/obs"
)

// TestFetchAndRenderEndToEnd runs the real pipeline: a lock manager feeds a
// health monitor, obs.Handler serves /health, fetchReport polls it, and the
// frame renders the traffic the manager actually saw.
func TestFetchAndRenderEndToEnd(t *testing.T) {
	// An hour-wide window keeps the whole test inside the current window:
	// the handler's Advance(now) never closes one, so nothing decays and
	// the assertions are deterministic however slow the runner is.
	mon := health.NewMonitor(health.Options{
		Window: time.Hour,
		SLO:    health.SLO{MaxAbortRate: 0.5},
	})
	mgr := lock.NewManager(lock.Options{Sinks: []lock.EventSink{mon}})
	ts := &obs.TraceSources{Health: mon.Handler()}
	srv := httptest.NewServer(obs.Handler(mgr, nil, ts))
	defer srv.Close()

	// Two waits on the same resource so one touch survives a decay, plus a
	// grant for the acquire series.
	now := time.Now()
	mon.Record(lock.Event{Kind: "grant", At: now, Resource: "db1/hot", Mode: lock.X})
	mon.Record(lock.Event{Kind: "wait", At: now, Resource: "db1/hot", Mode: lock.X})
	mon.Record(lock.Event{Kind: "wait", At: now, Resource: "db1/hot", Mode: lock.X})

	rep, err := fetchReport(srv.Client(), srv.URL+"/health")
	if err != nil {
		t.Fatal(err)
	}
	if rep.State == "" || rep.WindowMs != 3600000 {
		t.Fatalf("bad report: state=%q window_ms=%v", rep.State, rep.WindowMs)
	}

	var b strings.Builder
	render(&b, rep, false)
	out := b.String()
	if !strings.Contains(out, "db1/hot") {
		t.Errorf("hot resource missing from frame:\n%s", out)
	}
	if !strings.Contains(out, "acquires") || !strings.Contains(out, "wait_die") {
		t.Errorf("rate rows missing from frame:\n%s", out)
	}
}

func TestFetchReportErrors(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if _, err := fetchReport(srv.Client(), srv.URL+"/health"); err == nil {
		t.Error("404 did not error")
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer bad.Close()
	if _, err := fetchReport(bad.Client(), bad.URL+"/health"); err == nil {
		t.Error("malformed body did not error")
	}
}
