// Command benchdiff tabulates the committed BENCH_PR*.json reports so the
// performance trajectory of the PR sequence is visible in one table:
//
//	benchdiff            # scan the current directory
//	benchdiff -dir path  # scan another checkout
//
// Every lockbench report shares a loose schema: a "benchmark" name, a
// "description", and either speedup-style rows (a "results" array whose rows
// carry a speedup/ratio column) or overhead-style rows (an "overhead" array
// with an "overhead_pct" column). benchdiff extracts the headline numbers
// from whichever family a file belongs to, without depending on the exact
// per-PR report structs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"colock/internal/metrics"
)

// headline is one summarized report file.
type headline struct {
	File      string
	Benchmark string
	Kind      string // "speedup" or "overhead"
	Min, Max  float64
	Rows      int
}

// ratioKeys are the column names recognized as a speedup-style metric, in
// lookup order.
var ratioKeys = []string{"speedup", "kit_over_bare_ratio", "local_over_net_ratio"}

// summarize parses one report file and extracts its headline numbers.
func summarize(path string) (headline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return headline{}, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return headline{}, fmt.Errorf("%s: %w", path, err)
	}
	h := headline{File: filepath.Base(path)}
	h.Benchmark, _ = doc["benchmark"].(string)
	scan := func(rowsKey string, cols []string) bool {
		rows, _ := doc[rowsKey].([]any)
		found := false
		for _, raw := range rows {
			row, _ := raw.(map[string]any)
			for _, col := range cols {
				v, isNum := row[col].(float64)
				if !isNum {
					continue
				}
				if !found || v < h.Min {
					h.Min = v
				}
				if !found || v > h.Max {
					h.Max = v
				}
				found = true
				h.Rows++
				break
			}
		}
		return found
	}
	switch {
	case scan("results", ratioKeys):
		h.Kind = "speedup"
	case scan("overhead", []string{"overhead_pct"}):
		h.Kind = "overhead"
	default:
		return headline{}, fmt.Errorf("%s: no speedup or overhead rows found", path)
	}
	return h, nil
}

// tabulate renders the summarized reports; files come in name order, which
// sorts the PR sequence chronologically (single-digit PR numbers).
func tabulate(dir string) (*metrics.Table, error) {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no BENCH_PR*.json files in %s", dir)
	}
	sort.Strings(files)
	tab := metrics.NewTable("Benchmark trajectory across the PR sequence",
		"report", "benchmark", "rows", "headline")
	for _, f := range files {
		h, err := summarize(f)
		if err != nil {
			return nil, err
		}
		var head string
		switch h.Kind {
		case "speedup":
			head = fmt.Sprintf("speedup %.2fx..%.2fx", h.Min, h.Max)
		case "overhead":
			head = fmt.Sprintf("overhead %.1f%%..%.1f%%", h.Min, h.Max)
		}
		tab.Addf(h.File, h.Benchmark, h.Rows, head)
	}
	return tab, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	dir := flag.String("dir", ".", "directory holding the BENCH_PR*.json reports")
	flag.Parse()
	tab, err := tabulate(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.String())
}
