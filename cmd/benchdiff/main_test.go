package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The committed BENCH_PR*.json reports at the repo root must all summarize:
// every file yields either a speedup or an overhead headline, and the
// grant-path report (this PR's artifact) appears with a speedup row.
func TestTabulateCommittedReports(t *testing.T) {
	root := filepath.Join("..", "..")
	files, err := filepath.Glob(filepath.Join(root, "BENCH_PR*.json"))
	if err != nil || len(files) == 0 {
		t.Skipf("no committed reports visible from the test dir: %v", err)
	}
	tab, err := tabulate(root)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if len(tab.Rows) != len(files) {
		t.Errorf("tabulated %d rows for %d report files:\n%s", len(tab.Rows), len(files), out)
	}
	if !strings.Contains(out, "BENCH_PR9.json") || !strings.Contains(out, "grantbench") {
		t.Errorf("trajectory table is missing the grant-path report:\n%s", out)
	}
}

// A report with neither a results nor an overhead array is rejected rather
// than silently summarized as empty.
func TestSummarizeRejectsUnknownShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_PRX.json")
	if err := os.WriteFile(path, []byte(`{"benchmark":"mystery"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := summarize(path); err == nil {
		t.Error("summarize accepted a report with no recognizable rows")
	}
}
