package main

import (
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

// replayFile gates TestExternalReplayFile: the Makefile journal-smoke target
// runs a scripted colockshell session with a durable journal, storms a hot
// key, replays the journal with colockreplay -json, and invokes this test to
// validate the forensics report. liveHealth optionally points at the same
// session's `.health dump` so the offline SLO verdict can be checked against
// the live monitor's.
var (
	replayFile = flag.String("replayfile", "", "path to a colockreplay -json report to validate")
	liveHealth = flag.String("livehealth", "", "optional live .health dump; its verdict must match the replay's")
)

func TestExternalReplayFile(t *testing.T) {
	if *replayFile == "" {
		t.Skip("no -replayfile flag; this test validates journal-smoke output")
	}
	data, err := os.ReadFile(*replayFile)
	if err != nil {
		t.Fatalf("read %s: %v", *replayFile, err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("replay report does not parse: %v", err)
	}
	if rep.Records == 0 {
		t.Fatal("replay report has no records")
	}
	if rep.Torn {
		t.Fatal("smoke journal was closed cleanly but reads back torn")
	}
	if rep.Kinds["grant"] == 0 || rep.Kinds["wait"] == 0 {
		t.Fatalf("storm journal missing grant/wait events: kinds=%v", rep.Kinds)
	}

	// The smoke session's storm X-locks the trajectory leaf under cells/c1;
	// the hot-resource ranking must have caught it.
	hotFound := false
	for _, h := range rep.Hot {
		if strings.Contains(h.Resource, "cells/c1") && h.Blocks > 0 {
			hotFound = true
			break
		}
	}
	if !hotFound {
		t.Fatalf("hot key cells/c1 not in hot resources: %+v", rep.Hot)
	}

	// Eight workers on one X key pile up waiters: the convoy detector must
	// report at least one convoy, on the stormed resource.
	if len(rep.Convoys) == 0 {
		t.Fatal("no convoys detected in the storm journal")
	}
	convoyOnHot := false
	for _, c := range rep.Convoys {
		if strings.Contains(c.Resource, "cells/c1") && c.PeakDepth >= 3 {
			convoyOnHot = true
			break
		}
	}
	if !convoyOnHot {
		t.Fatalf("no convoy (peak ≥ 3) on the stormed key: %+v", rep.Convoys)
	}

	// The historical SLO replay must produce a well-formed verdict.
	switch rep.SLO.FinalState {
	case "ok", "warn", "critical":
	default:
		t.Fatalf("SLO final state %q is not ok/warn/critical", rep.SLO.FinalState)
	}
	switch rep.SLO.WorstState {
	case "ok", "warn", "critical":
	default:
		t.Fatalf("SLO worst state %q is not ok/warn/critical", rep.SLO.WorstState)
	}
	if rep.SLO.Windows < 1 {
		t.Fatalf("SLO replay closed %d windows, want ≥ 1", rep.SLO.Windows)
	}

	// When the live monitor's dump rides along, the offline verdict must
	// agree with what the live session reported.
	if *liveHealth != "" {
		hd, err := os.ReadFile(*liveHealth)
		if err != nil {
			t.Fatalf("read %s: %v", *liveHealth, err)
		}
		var live struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(hd, &live); err != nil {
			t.Fatalf("live health dump does not parse: %v", err)
		}
		if live.State != rep.SLO.FinalState {
			t.Fatalf("SLO verdicts disagree: live monitor %q, journal replay %q",
				live.State, rep.SLO.FinalState)
		}
	}
}
