package main

import (
	"strings"
	"testing"
	"time"

	"colock/internal/health"
	"colock/internal/journal"
	"colock/internal/lock"
	"colock/internal/trace"
)

var base = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return base.Add(d) }

// rec builds one synthetic record.
func rec(seq uint64, kind string, txn lock.TxnID, res lock.Resource, mode lock.Mode, t time.Time) journal.Record {
	return journal.Record{Seq: seq, Kind: kind, Txn: txn, Resource: res, Mode: mode, At: t}
}

func TestConvoyDetection(t *testing.T) {
	const res = lock.Resource("db/seg/cells/c1")
	var recs []journal.Record
	seq := uint64(0)
	next := func(r journal.Record) {
		seq++
		r.Seq = seq
		recs = append(recs, r)
	}
	// Five waiters pile up 1ms apart, then drain via grants.
	for i := 1; i <= 5; i++ {
		next(rec(0, "wait", lock.TxnID(i), res, lock.X, at(time.Duration(i)*time.Millisecond)))
	}
	for i := 1; i <= 5; i++ {
		g := rec(0, "grant", lock.TxnID(i), res, lock.X, at(time.Duration(10+i)*time.Millisecond))
		g.Waited = true
		next(g)
	}
	rep := analyze("t", recs, false, Config{ConvoyDepth: 3})
	if len(rep.Convoys) != 1 {
		t.Fatalf("convoys = %d, want 1: %+v", len(rep.Convoys), rep.Convoys)
	}
	c := rep.Convoys[0]
	if c.Resource != string(res) || c.PeakDepth != 5 {
		t.Fatalf("convoy = %+v, want resource %s peak 5", c, res)
	}
	if c.Waiters < 5 {
		t.Fatalf("convoy waiters = %d, want ≥5", c.Waiters)
	}
	if len(c.Timeline) < 2 {
		t.Fatalf("convoy timeline = %+v, want a depth trajectory", c.Timeline)
	}
	if len(rep.OpenWaits) != 0 {
		t.Fatalf("open waits = %+v, want none after drain", rep.OpenWaits)
	}
	// Below the threshold: no convoy.
	rep = analyze("t", recs, false, Config{ConvoyDepth: 6})
	if len(rep.Convoys) != 0 {
		t.Fatalf("convoys with threshold 6 = %+v, want none", rep.Convoys)
	}
}

func TestNearMissAndCaughtCycles(t *testing.T) {
	rA, rB := lock.Resource("a"), lock.Resource("b")
	w := func(seq uint64, txn lock.TxnID, res lock.Resource, t time.Time, blockers ...lock.TxnID) journal.Record {
		r := rec(seq, "wait", txn, res, lock.X, t)
		r.Blockers = blockers
		return r
	}
	recs := []journal.Record{
		// Near miss: 1⇄2 forms at 2ms, txn 2 times out at 5ms.
		w(1, 1, rA, at(1*time.Millisecond), 2),
		w(2, 2, rB, at(2*time.Millisecond), 1),
		rec(3, "timeout", 2, rB, lock.X, at(5*time.Millisecond)),
		rec(4, "grant", 1, rA, lock.X, at(6*time.Millisecond)),
		// Caught: 3⇄4 forms at 8ms, the detector kills txn 4 at 9ms.
		w(5, 3, rA, at(7*time.Millisecond), 4),
		w(6, 4, rB, at(8*time.Millisecond), 3),
		rec(7, "victim", 4, rB, lock.X, at(9*time.Millisecond)),
		rec(8, "grant", 3, rA, lock.X, at(10*time.Millisecond)),
	}
	rep := analyze("t", recs, false, Config{})
	if len(rep.Cycles) != 2 {
		t.Fatalf("cycles = %+v, want 2", rep.Cycles)
	}
	if rep.NearMisses != 1 {
		t.Fatalf("near misses = %d, want 1", rep.NearMisses)
	}
	miss, caught := rep.Cycles[0], rep.Cycles[1]
	if !miss.NearMiss || miss.BrokenBy != "timeout" || miss.BrokenTxn != 2 {
		t.Fatalf("near-miss cycle = %+v", miss)
	}
	if miss.LastedMs < 2.9 || miss.LastedMs > 3.1 {
		t.Fatalf("near-miss lasted %.2fms, want ~3ms", miss.LastedMs)
	}
	if caught.NearMiss || caught.BrokenBy != "victim-detect" || caught.BrokenTxn != 4 {
		t.Fatalf("caught cycle = %+v", caught)
	}
	if len(miss.Txns) != 2 || miss.Txns[0] != 1 || miss.Txns[1] != 2 {
		t.Fatalf("near-miss members = %v, want [1 2]", miss.Txns)
	}
}

func TestUnresolvedCycleAndOpenWaits(t *testing.T) {
	recs := []journal.Record{
		{Seq: 1, Kind: "wait", Txn: 1, Resource: "a", Mode: lock.X, At: at(time.Millisecond), Blockers: []lock.TxnID{2}},
		{Seq: 2, Kind: "wait", Txn: 2, Resource: "b", Mode: lock.X, At: at(2 * time.Millisecond), Blockers: []lock.TxnID{1}},
		{Seq: 3, Kind: "grant", Txn: 9, Resource: "c", Mode: lock.S, At: at(10 * time.Millisecond)},
	}
	rep := analyze("t", recs, false, Config{})
	if len(rep.Cycles) != 1 || rep.Cycles[0].BrokenBy != "unresolved" || !rep.Cycles[0].NearMiss {
		t.Fatalf("cycles = %+v, want one unresolved near miss", rep.Cycles)
	}
	if len(rep.OpenWaits) != 2 {
		t.Fatalf("open waits = %+v, want txns 1 and 2", rep.OpenWaits)
	}
	if rep.OpenWaits[0].Txn != 1 || rep.OpenWaits[0].SinceMs < 8.9 {
		t.Fatalf("open wait[0] = %+v, want txn 1 blocked ~9ms", rep.OpenWaits[0])
	}
}

func TestCriticalPathsAndHotResources(t *testing.T) {
	hot := lock.Resource("db/seg/cells/c1/robots/r1/trajectory")
	recs := []journal.Record{
		{Seq: 1, Kind: "wait", Txn: 1, Resource: hot, Mode: lock.X, At: at(0), Blockers: []lock.TxnID{7}},
		{Seq: 2, Kind: "grant", Txn: 1, Resource: hot, Mode: lock.X, At: at(50 * time.Millisecond), Waited: true, Dur: 50 * time.Millisecond},
		{Seq: 3, Kind: "wait", Txn: 1, Resource: "other", Mode: lock.S, At: at(60 * time.Millisecond)},
		{Seq: 4, Kind: "grant", Txn: 1, Resource: "other", Mode: lock.S, At: at(70 * time.Millisecond), Waited: true}, // Dur omitted: computed from At
		{Seq: 5, Kind: "wait", Txn: 2, Resource: hot, Mode: lock.X, At: at(80 * time.Millisecond)},
		{Seq: 6, Kind: "victim", Txn: 2, Resource: hot, Mode: lock.X, At: at(85 * time.Millisecond), Dur: 5 * time.Millisecond},
	}
	rep := analyze("t", recs, false, Config{})
	if len(rep.CriticalPaths) != 2 {
		t.Fatalf("paths = %+v, want 2", rep.CriticalPaths)
	}
	p := rep.CriticalPaths[0]
	if p.Txn != 1 || len(p.Steps) != 2 {
		t.Fatalf("top path = %+v, want txn 1 with 2 steps", p)
	}
	if p.BlockedMs < 59 || p.BlockedMs > 61 {
		t.Fatalf("txn 1 blocked %.2fms, want ~60 (50 explicit + 10 computed)", p.BlockedMs)
	}
	if p.Steps[0].Outcome != "grant" || len(p.Steps[0].Blockers) != 1 || p.Steps[0].Blockers[0] != 7 {
		t.Fatalf("step[0] = %+v, want grant behind txn 7", p.Steps[0])
	}
	if rep.CriticalPaths[1].Steps[0].Outcome != "victim-detect" {
		t.Fatalf("txn 2 outcome = %+v, want victim-detect", rep.CriticalPaths[1].Steps[0])
	}
	if len(rep.Hot) == 0 || rep.Hot[0].Resource != string(hot) {
		t.Fatalf("hot = %+v, want %s first", rep.Hot, hot)
	}
	if rep.Hot[0].Blocks != 3 { // 2 waits + 1 victim
		t.Fatalf("hot blocks = %d, want 3", rep.Hot[0].Blocks)
	}
	if rep.AbortRate < 0.3 || rep.AbortRate > 0.35 { // 1 abort / 3 attempts
		t.Fatalf("abort rate = %.3f, want 1/3", rep.AbortRate)
	}
}

func TestSLOReplayGradesHistory(t *testing.T) {
	slo := health.SLO{MaxAbortRate: 0.05, WarnAfter: 1, CritAfter: 2, RecoverAfter: 2}
	// Six 1s windows of victim-heavy traffic: the replayed monitor must
	// escalate to critical and stay there.
	var recs []journal.Record
	seq := uint64(0)
	for win := 0; win < 6; win++ {
		t0 := at(time.Duration(win) * time.Second)
		for i := 0; i < 5; i++ {
			seq++
			recs = append(recs, journal.Record{Seq: seq, Kind: "victim", Txn: lock.TxnID(seq), Resource: "r", Mode: lock.X, At: t0.Add(time.Duration(i) * time.Millisecond)})
		}
		seq++
		recs = append(recs, journal.Record{Seq: seq, Kind: "grant", Txn: lock.TxnID(seq), Resource: "r", Mode: lock.X, At: t0.Add(10 * time.Millisecond)})
	}
	rep := analyze("t", recs, false, Config{Window: time.Second, SLO: slo})
	if rep.SLO.WorstState != "critical" || rep.SLO.FinalState != "critical" {
		t.Fatalf("SLO replay = %+v, want critical/critical", rep.SLO)
	}
	if len(rep.SLO.Transitions) == 0 || !strings.Contains(rep.SLO.Transitions[0], "abort rate") {
		t.Fatalf("transitions = %v, want an abort-rate escalation first", rep.SLO.Transitions)
	}

	// A healthy stream grades ok.
	healthy := []journal.Record{
		{Seq: 1, Kind: "grant", Txn: 1, Resource: "r", Mode: lock.S, At: at(0)},
		{Seq: 2, Kind: "grant", Txn: 2, Resource: "r", Mode: lock.S, At: at(3 * time.Second)},
	}
	rep = analyze("t", healthy, false, Config{Window: time.Second, SLO: slo})
	if rep.SLO.WorstState != "ok" || rep.SLO.FinalState != "ok" {
		t.Fatalf("healthy SLO replay = %+v, want ok/ok", rep.SLO)
	}
	if rep.SLO.Windows == 0 {
		t.Fatalf("healthy replay closed no windows")
	}
}

func TestFilterAround(t *testing.T) {
	var recs []journal.Record
	for i := 1; i <= 10; i++ {
		recs = append(recs, journal.Record{Seq: uint64(i), Kind: "grant", Txn: lock.TxnID(i), Resource: "r", At: at(time.Duration(i) * time.Second)})
	}
	inc := &trace.Incident{At: at(7 * time.Second), JournalOffset: 6}
	got := filterAround(recs, inc, 4*time.Second)
	// Offset caps at Seq 6; the 4s window keeps At ∈ [3s, 7s] → Seq 3..6.
	if len(got) != 4 || got[0].Seq != 3 || got[3].Seq != 6 {
		t.Fatalf("filtered = %+v, want Seq 3..6", got)
	}
	// Without an offset the time window alone governs.
	inc = &trace.Incident{At: at(7 * time.Second)}
	got = filterAround(recs, inc, 2*time.Second)
	if len(got) != 3 || got[0].Seq != 5 || got[2].Seq != 7 {
		t.Fatalf("filtered = %+v, want Seq 5..7", got)
	}
}

func TestDiffReport(t *testing.T) {
	a := analyze("a", []journal.Record{
		{Seq: 1, Kind: "grant", Txn: 1, Resource: "r", Mode: lock.X, At: at(0)},
	}, false, Config{})
	b := analyze("b", []journal.Record{
		{Seq: 1, Kind: "wait", Txn: 1, Resource: "r", Mode: lock.X, At: at(0)},
		{Seq: 2, Kind: "victim", Txn: 1, Resource: "r", Mode: lock.X, At: at(time.Millisecond)},
	}, false, Config{})
	lines := diffReport(a, b)
	byName := map[string]diffLine{}
	for _, l := range lines {
		byName[l.Name] = l
	}
	if l := byName["victims"]; l.A != "0" || l.B != "1" {
		t.Fatalf("victims row = %+v", l)
	}
	if l := byName["hottest resource"]; l.A != "-" || !strings.Contains(l.B, "r (") {
		t.Fatalf("hottest row = %+v", l)
	}
}

// TestRenderSmoke pins that the text renderer mentions every section for a
// rich report and never panics.
func TestRenderSmoke(t *testing.T) {
	recs := []journal.Record{
		{Seq: 1, Kind: "wait", Txn: 1, Resource: "a", Mode: lock.X, At: at(time.Millisecond), Blockers: []lock.TxnID{2}},
		{Seq: 2, Kind: "wait", Txn: 2, Resource: "b", Mode: lock.X, At: at(2 * time.Millisecond), Blockers: []lock.TxnID{1}},
		{Seq: 3, Kind: "wait", Txn: 3, Resource: "b", Mode: lock.X, At: at(2 * time.Millisecond), Blockers: []lock.TxnID{1}},
		{Seq: 4, Kind: "wait", Txn: 4, Resource: "b", Mode: lock.X, At: at(2 * time.Millisecond), Blockers: []lock.TxnID{1}},
		{Seq: 5, Kind: "timeout", Txn: 2, Resource: "b", Mode: lock.X, At: at(5 * time.Millisecond), Dur: 3 * time.Millisecond},
		{Seq: 6, Kind: "grant", Txn: 1, Resource: "a", Mode: lock.X, At: at(6 * time.Millisecond), Waited: true, Dur: 5 * time.Millisecond},
	}
	rep := analyze("t", recs, true, Config{ConvoyDepth: 3})
	var sb strings.Builder
	printReport(&sb, rep, Config{ConvoyDepth: 3})
	out := sb.String()
	for _, want := range []string{"torn tail", "SLO replay", "hot resources", "convoys", "NEAR MISS", "critical paths", "still blocked"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}
