package main

// Pure analysis: a timestamp-ordered []journal.Record in, a Report out.
// Kept free of I/O and flag state so every analysis is unit-testable; main
// only loads journals and renders.
//
// The analyses reconstruct what the live observability layers could only
// sample or approximate:
//
//   - waits-for evolution: every "wait" event carries the blockers computed
//     under the shard latch at enqueue time, so replaying the stream rebuilds
//     the waits-for graph edge by edge. Cycles that appear and are broken by
//     anything OTHER than the deadlock detector's victim abort are
//     "near misses" — deadlocks that existed transiently but were dissolved
//     by timeout, wait-die death, cancellation or an unrelated release
//     before detection could prove them.
//   - convoys: per-resource queue-depth timelines; a run of ≥N simultaneous
//     waiters on one resource is a convoy, reported with its depth peak and
//     timeline — the post-hoc proof of what the live top-K sketch only ranks.
//   - blocking critical paths: per transaction, the ordered chain of blocked
//     acquisitions with durations and blocker attribution.
//   - historical SLO: the stream replayed through a fresh health.Monitor,
//     grading the past with the same burn-rate machine that grades the
//     present.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"colock/internal/health"
	"colock/internal/journal"
	"colock/internal/lock"
	"colock/internal/obs"
)

// Config holds the analysis knobs.
type Config struct {
	// ConvoyDepth is the minimum simultaneous-waiter count that counts as a
	// convoy (default 3).
	ConvoyDepth int
	// Window is the SLO replay bucket width (default 1s).
	Window time.Duration
	// SLO grades the replayed windows (zero value: colockshell defaults).
	SLO health.SLO
	// Top bounds the hot-resource, convoy and critical-path lists.
	Top int
}

func (c Config) withDefaults() Config {
	if c.ConvoyDepth <= 0 {
		c.ConvoyDepth = 3
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if !c.sloSet() {
		c.SLO = health.SLO{MaxAbortRate: 0.05, MaxWaitP99: 250 * time.Millisecond, MaxWaiterDepth: 64}
	}
	if c.Top <= 0 {
		c.Top = 10
	}
	return c
}

func (c Config) sloSet() bool {
	return c.SLO.MaxAbortRate > 0 || c.SLO.MaxWaitP99 > 0 || c.SLO.MaxWaiterDepth > 0
}

// Report is the machine-readable analysis result (-json).
type Report struct {
	Journal   string         `json:"journal"`
	Records   int            `json:"records"`
	Torn      bool           `json:"torn"`
	From      time.Time      `json:"from"`
	To        time.Time      `json:"to"`
	SpanMs    float64        `json:"span_ms"`
	Kinds     map[string]int `json:"kinds"`
	Txns      int            `json:"txns"`
	AbortRate float64        `json:"abort_rate"`

	WaitCount uint64  `json:"wait_count"`
	WaitP50Ms float64 `json:"wait_p50_ms"`
	WaitP95Ms float64 `json:"wait_p95_ms"`
	WaitP99Ms float64 `json:"wait_p99_ms"`
	WaitMaxMs float64 `json:"wait_max_ms"`

	Hot           []HotResource `json:"hot"`
	Convoys       []Convoy      `json:"convoys"`
	Cycles        []Cycle       `json:"cycles"`
	NearMisses    int           `json:"near_misses"`
	CriticalPaths []TxnPath     `json:"critical_paths"`
	OpenWaits     []OpenWait    `json:"open_waits,omitempty"`
	SLO           SLOReplay     `json:"slo"`
}

// HotResource is one contended resource ranked by blocked events.
type HotResource struct {
	Resource  string  `json:"resource"`
	Mode      string  `json:"mode"`
	Blocks    int     `json:"blocks"`
	BlockedMs float64 `json:"blocked_ms"`
}

// DepthPoint is one step of a convoy's queue-depth timeline.
type DepthPoint struct {
	AtMs  float64 `json:"at_ms"` // offset from convoy start
	Depth int     `json:"depth"`
}

// Convoy is one run of ≥ConvoyDepth simultaneous waiters on a resource.
type Convoy struct {
	Resource  string       `json:"resource"`
	PeakDepth int          `json:"peak_depth"`
	Waiters   int          `json:"waiters"` // wait events inside the convoy
	Start     time.Time    `json:"start"`
	DurMs     float64      `json:"dur_ms"`
	Timeline  []DepthPoint `json:"timeline,omitempty"`
}

// Cycle is one waits-for cycle observed during replay.
type Cycle struct {
	Txns      []uint64  `json:"txns"` // cycle members, ascending
	FormedAt  time.Time `json:"formed_at"`
	BrokenAt  time.Time `json:"broken_at,omitempty"`
	LastedMs  float64   `json:"lasted_ms"`
	BrokenBy  string    `json:"broken_by"` // victim-detect, victim-waitdie, timeout, cancel, grant, unresolved
	BrokenTxn uint64    `json:"broken_txn,omitempty"`
	// NearMiss marks cycles dissolved by anything but the deadlock
	// detector: they existed, and only timeout/wait-die/cancel luck — not
	// detection — broke them.
	NearMiss bool `json:"near_miss"`
}

// PathStep is one blocked acquisition on a transaction's critical path.
type PathStep struct {
	Resource string   `json:"resource"`
	Mode     string   `json:"mode"`
	WaitMs   float64  `json:"wait_ms"`
	Outcome  string   `json:"outcome"` // grant, victim-detect, victim-waitdie, timeout, cancel, open
	Blockers []uint64 `json:"blockers,omitempty"`
}

// TxnPath is a transaction's blocking critical path.
type TxnPath struct {
	Txn       uint64     `json:"txn"`
	BlockedMs float64    `json:"blocked_ms"`
	Steps     []PathStep `json:"steps"`
}

// OpenWait is a wait still unresolved when the stream ends — the waits-for
// graph's final state (for -around: the graph right before the incident).
type OpenWait struct {
	Txn      uint64   `json:"txn"`
	Resource string   `json:"resource"`
	Mode     string   `json:"mode"`
	SinceMs  float64  `json:"since_ms"` // blocked for this long at stream end
	Blockers []uint64 `json:"blockers,omitempty"`
}

// SLOReplay is the historical SLO grading.
type SLOReplay struct {
	FinalState  string   `json:"final_state"`
	WorstState  string   `json:"worst_state"`
	Windows     int      `json:"windows"`
	Transitions []string `json:"transitions,omitempty"`
}

// waitInfo is one in-flight blocked request during replay.
type waitInfo struct {
	resource lock.Resource
	mode     lock.Mode
	blockers []lock.TxnID
	since    time.Time
}

// convoyTrack is the per-resource convoy state machine.
type convoyTrack struct {
	open     bool
	start    time.Time
	peak     int
	waiters  int
	timeline []DepthPoint
}

// analyzer carries the replay state.
type analyzer struct {
	cfg     Config
	report  *Report
	waiting map[lock.TxnID]*waitInfo
	edges   map[lock.TxnID]map[lock.TxnID]bool // waiter → blockers
	depth   map[lock.Resource]int
	convoys map[lock.Resource]*convoyTrack
	cycles  map[string]*Cycle // open cycles by member key
	hot     map[string]*HotResource
	paths   map[lock.TxnID]*TxnPath
	txns    map[lock.TxnID]bool
	wait    obs.Histogram
	grants  uint64
	aborts  uint64
	lastAt  time.Time
}

// analyze runs every analysis over the ordered record stream.
func analyze(name string, recs []journal.Record, torn bool, cfg Config) *Report {
	cfg = cfg.withDefaults()
	a := &analyzer{
		cfg: cfg,
		report: &Report{
			Journal: name,
			Records: len(recs),
			Torn:    torn,
			Kinds:   make(map[string]int),
		},
		waiting: make(map[lock.TxnID]*waitInfo),
		edges:   make(map[lock.TxnID]map[lock.TxnID]bool),
		depth:   make(map[lock.Resource]int),
		convoys: make(map[lock.Resource]*convoyTrack),
		cycles:  make(map[string]*Cycle),
		hot:     make(map[string]*HotResource),
		paths:   make(map[lock.TxnID]*TxnPath),
		txns:    make(map[lock.TxnID]bool),
	}
	for i := range recs {
		a.step(recs[i])
	}
	a.finish(recs, cfg)
	return a.report
}

// step consumes one record.
func (a *analyzer) step(rec journal.Record) {
	r := a.report
	r.Kinds[rec.Kind]++
	if !rec.At.IsZero() {
		if r.From.IsZero() {
			r.From = rec.At
		}
		if rec.At.After(a.lastAt) {
			a.lastAt = rec.At
		}
	}
	if rec.Txn != 0 {
		a.txns[rec.Txn] = true
	}
	switch rec.Kind {
	case "grant", "convert":
		a.grants++
		if rec.Waited && rec.Dur > 0 {
			a.wait.Record(rec.Dur)
		}
		a.endWait(rec, "grant")
	case "wait":
		a.beginWait(rec)
	case "victim":
		a.aborts++
		if rec.Dur > 0 {
			a.wait.Record(rec.Dur)
		}
		outcome := "victim-detect"
		if rec.WaitDie {
			outcome = "victim-waitdie"
		}
		a.touchHot(rec)
		a.endWait(rec, outcome)
	case "timeout":
		a.aborts++
		if rec.Dur > 0 {
			a.wait.Record(rec.Dur)
		}
		a.touchHot(rec)
		a.endWait(rec, "timeout")
	case "cancel":
		a.endWait(rec, "cancel")
	case "shed":
		a.touchHot(rec)
	}
}

// hotKey joins resource and mode for the contention map.
func hotKey(res lock.Resource, mode lock.Mode) string {
	return string(res) + "\x00" + mode.String()
}

// touchHot counts one contention event against the resource.
func (a *analyzer) touchHot(rec journal.Record) {
	k := hotKey(rec.Resource, rec.Mode)
	h := a.hot[k]
	if h == nil {
		h = &HotResource{Resource: string(rec.Resource), Mode: rec.Mode.String()}
		a.hot[k] = h
	}
	h.Blocks++
}

// beginWait opens a blocked request: queue depth, convoy tracking, waits-for
// edges, cycle detection.
func (a *analyzer) beginWait(rec journal.Record) {
	a.touchHot(rec)
	a.waiting[rec.Txn] = &waitInfo{resource: rec.Resource, mode: rec.Mode, blockers: rec.Blockers, since: rec.At}
	d := a.depth[rec.Resource] + 1
	a.depth[rec.Resource] = d

	ct := a.convoys[rec.Resource]
	if ct == nil {
		ct = &convoyTrack{}
		a.convoys[rec.Resource] = ct
	}
	if d >= a.cfg.ConvoyDepth {
		if !ct.open {
			ct.open = true
			ct.start = rec.At
			ct.peak = d
			ct.waiters = d
			ct.timeline = append(ct.timeline[:0], DepthPoint{AtMs: 0, Depth: d})
		} else {
			if d > ct.peak {
				ct.peak = d
			}
			ct.waiters++
			ct.point(rec.At, d)
		}
	}

	if len(rec.Blockers) > 0 {
		out := a.edges[rec.Txn]
		if out == nil {
			out = make(map[lock.TxnID]bool)
			a.edges[rec.Txn] = out
		}
		for _, b := range rec.Blockers {
			out[b] = true
		}
		a.detectCycle(rec.Txn, rec.At)
	}
}

// point appends a depth sample to an open convoy's timeline (capped).
func (ct *convoyTrack) point(at time.Time, depth int) {
	if len(ct.timeline) >= 64 || at.IsZero() || ct.start.IsZero() {
		return
	}
	ct.timeline = append(ct.timeline, DepthPoint{AtMs: ms(at.Sub(ct.start)), Depth: depth})
}

// endWait closes txn's blocked request with the given outcome, if one is
// open: releases the queue slot, extends the critical path, attributes
// blocked time, and dissolves cycles the transaction was part of.
func (a *analyzer) endWait(rec journal.Record, outcome string) {
	ws, ok := a.waiting[rec.Txn]
	if !ok {
		return
	}
	delete(a.waiting, rec.Txn)
	delete(a.edges, rec.Txn)

	d := a.depth[ws.resource] - 1
	if d <= 0 {
		delete(a.depth, ws.resource)
		d = 0
	} else {
		a.depth[ws.resource] = d
	}
	if ct := a.convoys[ws.resource]; ct != nil && ct.open {
		ct.point(rec.At, d)
		if d < a.cfg.ConvoyDepth {
			a.closeConvoy(ws.resource, ct, rec.At)
		}
	}

	dur := rec.Dur
	if dur <= 0 && !rec.At.IsZero() && !ws.since.IsZero() {
		dur = rec.At.Sub(ws.since)
	}
	if dur < 0 {
		dur = 0
	}
	if h := a.hot[hotKey(ws.resource, ws.mode)]; h != nil {
		h.BlockedMs += ms(dur)
	}
	p := a.paths[rec.Txn]
	if p == nil {
		p = &TxnPath{Txn: uint64(rec.Txn)}
		a.paths[rec.Txn] = p
	}
	p.BlockedMs += ms(dur)
	p.Steps = append(p.Steps, PathStep{
		Resource: string(ws.resource),
		Mode:     ws.mode.String(),
		WaitMs:   ms(dur),
		Outcome:  outcome,
		Blockers: txnIDs(ws.blockers),
	})

	for key, c := range a.cycles {
		if c.BrokenBy != "" {
			continue
		}
		for _, m := range c.Txns {
			if m == uint64(rec.Txn) {
				c.BrokenBy = outcome
				c.BrokenTxn = uint64(rec.Txn)
				c.BrokenAt = rec.At
				if !c.FormedAt.IsZero() && !rec.At.IsZero() {
					c.LastedMs = ms(rec.At.Sub(c.FormedAt))
				}
				c.NearMiss = outcome != "victim-detect"
				a.report.Cycles = append(a.report.Cycles, *c)
				delete(a.cycles, key)
				break
			}
		}
	}
}

// closeConvoy finalizes an open convoy if it is worth reporting.
func (a *analyzer) closeConvoy(res lock.Resource, ct *convoyTrack, end time.Time) {
	cv := Convoy{
		Resource:  string(res),
		PeakDepth: ct.peak,
		Waiters:   ct.waiters,
		Start:     ct.start,
		Timeline:  append([]DepthPoint(nil), ct.timeline...),
	}
	if !ct.start.IsZero() && !end.IsZero() {
		cv.DurMs = ms(end.Sub(ct.start))
	}
	a.report.Convoys = append(a.report.Convoys, cv)
	*ct = convoyTrack{}
}

// detectCycle looks for a waits-for cycle through txn after its edges were
// added, and opens a Cycle record for a new one.
func (a *analyzer) detectCycle(txn lock.TxnID, at time.Time) {
	var path []lock.TxnID
	onPath := make(map[lock.TxnID]bool)
	var dfs func(t lock.TxnID) []lock.TxnID
	dfs = func(t lock.TxnID) []lock.TxnID {
		if onPath[t] {
			if t == txn {
				return append([]lock.TxnID(nil), path...)
			}
			return nil
		}
		if len(path) > 64 {
			return nil
		}
		onPath[t] = true
		path = append(path, t)
		for next := range a.edges[t] {
			if cyc := dfs(next); cyc != nil {
				return cyc
			}
		}
		path = path[:len(path)-1]
		onPath[t] = false
		return nil
	}
	cyc := dfs(txn)
	if cyc == nil {
		return
	}
	ids := txnIDs(cyc)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	key := fmt.Sprint(ids)
	if _, ok := a.cycles[key]; ok {
		return
	}
	a.cycles[key] = &Cycle{Txns: ids, FormedAt: at}
}

// finish assembles the report: totals, rankings, open state, SLO replay.
func (a *analyzer) finish(recs []journal.Record, cfg Config) {
	r := a.report
	r.To = a.lastAt
	if !r.From.IsZero() && !r.To.IsZero() {
		r.SpanMs = ms(r.To.Sub(r.From))
	}
	r.Txns = len(a.txns)
	if attempts := a.grants + a.aborts; attempts > 0 {
		r.AbortRate = float64(a.aborts) / float64(attempts)
	}
	snap := a.wait.Snapshot()
	r.WaitCount = snap.Count
	r.WaitP50Ms = ms(snap.Quantile(0.50))
	r.WaitP95Ms = ms(snap.Quantile(0.95))
	r.WaitP99Ms = ms(snap.Quantile(0.99))
	r.WaitMaxMs = ms(snap.Max)

	// Still-open convoys and cycles close at stream end.
	for res, ct := range a.convoys {
		if ct.open {
			a.closeConvoy(res, ct, a.lastAt)
		}
	}
	for _, c := range a.cycles {
		c.BrokenBy = "unresolved"
		c.NearMiss = true
		if !c.FormedAt.IsZero() && !a.lastAt.IsZero() {
			c.LastedMs = ms(a.lastAt.Sub(c.FormedAt))
		}
		r.Cycles = append(r.Cycles, *c)
	}
	sort.Slice(r.Cycles, func(i, j int) bool { return r.Cycles[i].FormedAt.Before(r.Cycles[j].FormedAt) })
	for _, c := range r.Cycles {
		if c.NearMiss {
			r.NearMisses++
		}
	}

	for _, h := range a.hot {
		r.Hot = append(r.Hot, *h)
	}
	sort.Slice(r.Hot, func(i, j int) bool {
		if r.Hot[i].Blocks != r.Hot[j].Blocks {
			return r.Hot[i].Blocks > r.Hot[j].Blocks
		}
		return r.Hot[i].Resource < r.Hot[j].Resource
	})
	if len(r.Hot) > cfg.Top {
		r.Hot = r.Hot[:cfg.Top]
	}

	sort.Slice(r.Convoys, func(i, j int) bool {
		if r.Convoys[i].PeakDepth != r.Convoys[j].PeakDepth {
			return r.Convoys[i].PeakDepth > r.Convoys[j].PeakDepth
		}
		return r.Convoys[i].DurMs > r.Convoys[j].DurMs
	})
	if len(r.Convoys) > cfg.Top {
		r.Convoys = r.Convoys[:cfg.Top]
	}

	for txn, ws := range a.waiting {
		ow := OpenWait{Txn: uint64(txn), Resource: string(ws.resource), Mode: ws.mode.String(), Blockers: txnIDs(ws.blockers)}
		if !ws.since.IsZero() && !a.lastAt.IsZero() {
			ow.SinceMs = ms(a.lastAt.Sub(ws.since))
		}
		r.OpenWaits = append(r.OpenWaits, ow)
	}
	sort.Slice(r.OpenWaits, func(i, j int) bool { return r.OpenWaits[i].Txn < r.OpenWaits[j].Txn })

	for _, p := range a.paths {
		r.CriticalPaths = append(r.CriticalPaths, *p)
	}
	sort.Slice(r.CriticalPaths, func(i, j int) bool {
		if r.CriticalPaths[i].BlockedMs != r.CriticalPaths[j].BlockedMs {
			return r.CriticalPaths[i].BlockedMs > r.CriticalPaths[j].BlockedMs
		}
		return r.CriticalPaths[i].Txn < r.CriticalPaths[j].Txn
	})
	if len(r.CriticalPaths) > cfg.Top {
		r.CriticalPaths = r.CriticalPaths[:cfg.Top]
	}

	r.SLO = replaySLO(recs, cfg)
}

// replaySLO feeds the stream through a fresh health monitor, advancing its
// window clock along the events' own timestamps, and grades history with
// the same hysteretic machine that grades the present.
func replaySLO(recs []journal.Record, cfg Config) SLOReplay {
	out := SLOReplay{FinalState: health.StateOK.String(), WorstState: health.StateOK.String()}
	var first, last time.Time
	for i := range recs {
		if !recs[i].At.IsZero() {
			if first.IsZero() {
				first = recs[i].At
			}
			if recs[i].At.After(last) {
				last = recs[i].At
			}
		}
	}
	if first.IsZero() {
		return out
	}
	retain := int(last.Sub(first)/cfg.Window) + 2
	if retain > 100000 {
		retain = 100000
	}
	mon := health.NewMonitor(health.Options{
		Window: cfg.Window,
		Retain: retain,
		SLO:    cfg.SLO,
		Start:  first,
	})
	worst := health.StateOK
	mon.OnTransition(func(tr health.Transition) {
		if tr.To > worst {
			worst = tr.To
		}
		out.Transitions = append(out.Transitions, fmt.Sprintf("%s->%s %s", tr.From, tr.To, tr.Reason))
	})
	for i := range recs {
		rec := recs[i]
		switch rec.Kind {
		case "fastpath":
			mon.RecordFastPathHit()
			continue
		case "health", "reset":
			continue
		}
		mon.Record(rec.Event())
		if !rec.At.IsZero() {
			mon.Advance(rec.At)
		}
	}
	final := mon.Advance(last.Add(cfg.Window))
	if final > worst {
		worst = final
	}
	out.FinalState = final.String()
	out.WorstState = worst.String()
	out.Windows = len(mon.Windows(0))
	return out
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// txnIDs converts a TxnID slice for JSON.
func txnIDs(ts []lock.TxnID) []uint64 {
	if len(ts) == 0 {
		return nil
	}
	out := make([]uint64, len(ts))
	for i, t := range ts {
		out[i] = uint64(t)
	}
	return out
}

// diffLine renders one row of the -diff comparison.
type diffLine struct {
	Name string
	A, B string
}

// diffReport compares the headline numbers of two analyses.
func diffReport(a, b *Report) []diffLine {
	f := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	lines := []diffLine{
		{"records", fmt.Sprint(a.Records), fmt.Sprint(b.Records)},
		{"transactions", fmt.Sprint(a.Txns), fmt.Sprint(b.Txns)},
		{"grants", fmt.Sprint(a.Kinds["grant"] + a.Kinds["convert"]), fmt.Sprint(b.Kinds["grant"] + b.Kinds["convert"])},
		{"blocks", fmt.Sprint(a.Kinds["wait"]), fmt.Sprint(b.Kinds["wait"])},
		{"victims", fmt.Sprint(a.Kinds["victim"]), fmt.Sprint(b.Kinds["victim"])},
		{"timeouts", fmt.Sprint(a.Kinds["timeout"]), fmt.Sprint(b.Kinds["timeout"])},
		{"sheds", fmt.Sprint(a.Kinds["shed"]), fmt.Sprint(b.Kinds["shed"])},
		{"fast-path hits", fmt.Sprint(a.Kinds["fastpath"]), fmt.Sprint(b.Kinds["fastpath"])},
		{"abort rate", f(a.AbortRate), f(b.AbortRate)},
		{"wait p50 (ms)", f(a.WaitP50Ms), f(b.WaitP50Ms)},
		{"wait p99 (ms)", f(a.WaitP99Ms), f(b.WaitP99Ms)},
		{"convoys", fmt.Sprint(len(a.Convoys)), fmt.Sprint(len(b.Convoys))},
		{"near-miss cycles", fmt.Sprint(a.NearMisses), fmt.Sprint(b.NearMisses)},
		{"SLO worst state", a.SLO.WorstState, b.SLO.WorstState},
	}
	hot := func(r *Report) string {
		if len(r.Hot) == 0 {
			return "-"
		}
		return fmt.Sprintf("%s (%d)", r.Hot[0].Resource, r.Hot[0].Blocks)
	}
	return append(lines, diffLine{"hottest resource", hot(a), hot(b)})
}

// shortTxns renders a cycle's member list.
func shortTxns(ids []uint64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, "→") + "→" + parts[0]
}
