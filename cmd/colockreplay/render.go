package main

// Text rendering for the analysis report. Pure io.Writer funcs, like
// lockmon's render: testable without a terminal.

import (
	"fmt"
	"io"
	"time"

	"colock/internal/trace"
)

// printIncidentHeader introduces an -around replay.
func printIncidentHeader(w io.Writer, path string, inc *trace.Incident, kept int) {
	fmt.Fprintf(w, "incident  %s\n", path)
	fmt.Fprintf(w, "  reason=%s txn=%d resource=%s mode=%s\n", inc.Reason, inc.Txn, inc.Resource, inc.Mode)
	fmt.Fprintf(w, "  at=%s journal-offset=%d → replaying %d records leading up to it\n\n",
		inc.At.Format(time.RFC3339Nano), inc.JournalOffset, kept)
}

// printReport renders the full text report.
func printReport(w io.Writer, r *Report, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "journal   %s\n", r.Journal)
	fmt.Fprintf(w, "records   %d", r.Records)
	if r.Torn {
		fmt.Fprintf(w, "  (torn tail: crash mid-append, final record discarded)")
	}
	fmt.Fprintln(w)
	if !r.From.IsZero() {
		fmt.Fprintf(w, "span      %s … %s  (%.1fms)\n", r.From.Format(time.RFC3339Nano), r.To.Format(time.RFC3339Nano), r.SpanMs)
	}
	fmt.Fprintf(w, "txns      %d   abort rate %.3f\n", r.Txns, r.AbortRate)
	fmt.Fprintf(w, "events    grants=%d waits=%d victims=%d timeouts=%d sheds=%d fastpath=%d releases=%d\n",
		r.Kinds["grant"]+r.Kinds["convert"], r.Kinds["wait"], r.Kinds["victim"],
		r.Kinds["timeout"], r.Kinds["shed"], r.Kinds["fastpath"], r.Kinds["release"]+r.Kinds["release-all"])
	if r.WaitCount > 0 {
		fmt.Fprintf(w, "waits     n=%d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			r.WaitCount, r.WaitP50Ms, r.WaitP95Ms, r.WaitP99Ms, r.WaitMaxMs)
	}

	fmt.Fprintf(w, "\nSLO replay (%s windows): final=%s worst=%s over %d windows\n",
		cfg.Window, r.SLO.FinalState, r.SLO.WorstState, r.SLO.Windows)
	for _, tr := range r.SLO.Transitions {
		fmt.Fprintf(w, "  %s\n", tr)
	}

	if len(r.Hot) > 0 {
		fmt.Fprintf(w, "\nhot resources (by blocked events)\n")
		for _, h := range r.Hot {
			fmt.Fprintf(w, "  %-48s %-3s blocks=%-5d blocked=%.2fms\n", h.Resource, h.Mode, h.Blocks, h.BlockedMs)
		}
	}

	if len(r.Convoys) > 0 {
		fmt.Fprintf(w, "\nconvoys (≥%d simultaneous waiters)\n", cfg.ConvoyDepth)
		for _, c := range r.Convoys {
			fmt.Fprintf(w, "  %-48s peak=%-3d waiters=%-4d dur=%.2fms\n", c.Resource, c.PeakDepth, c.Waiters, c.DurMs)
			if len(c.Timeline) > 1 {
				fmt.Fprintf(w, "    depth:")
				for _, p := range c.Timeline {
					fmt.Fprintf(w, " %.1fms→%d", p.AtMs, p.Depth)
				}
				fmt.Fprintln(w)
			}
		}
	}

	if len(r.Cycles) > 0 {
		fmt.Fprintf(w, "\nwaits-for cycles (%d near misses)\n", r.NearMisses)
		for _, c := range r.Cycles {
			tag := "caught"
			if c.NearMiss {
				tag = "NEAR MISS"
			}
			fmt.Fprintf(w, "  [%s] %s lasted %.2fms, broken by %s", tag, shortTxns(c.Txns), c.LastedMs, c.BrokenBy)
			if c.BrokenTxn != 0 {
				fmt.Fprintf(w, " (txn %d)", c.BrokenTxn)
			}
			fmt.Fprintln(w)
		}
	}

	if len(r.CriticalPaths) > 0 {
		fmt.Fprintf(w, "\nblocking critical paths\n")
		for _, p := range r.CriticalPaths {
			fmt.Fprintf(w, "  txn %-6d blocked %.2fms over %d waits\n", p.Txn, p.BlockedMs, len(p.Steps))
			for _, s := range p.Steps {
				fmt.Fprintf(w, "    %-46s %-3s %8.2fms %-14s", s.Resource, s.Mode, s.WaitMs, s.Outcome)
				if len(s.Blockers) > 0 {
					fmt.Fprintf(w, " behind %v", s.Blockers)
				}
				fmt.Fprintln(w)
			}
		}
	}

	if len(r.OpenWaits) > 0 {
		fmt.Fprintf(w, "\nstill blocked at stream end (waits-for graph at the cut)\n")
		for _, ow := range r.OpenWaits {
			fmt.Fprintf(w, "  txn %-6d waits %-46s %-3s for %.2fms", ow.Txn, ow.Resource, ow.Mode, ow.SinceMs)
			if len(ow.Blockers) > 0 {
				fmt.Fprintf(w, " behind %v", ow.Blockers)
			}
			fmt.Fprintln(w)
		}
	}
}

// printDiff renders the two-journal comparison.
func printDiff(w io.Writer, a, b *Report) {
	fmt.Fprintf(w, "%-20s %-32s %-32s\n", "", trunc(a.Journal, 32), trunc(b.Journal, 32))
	for _, l := range diffReport(a, b) {
		marker := " "
		if l.A != l.B {
			marker = "≠"
		}
		fmt.Fprintf(w, "%-20s %-32s %-32s %s\n", l.Name, l.A, l.B, marker)
	}
}

// trunc keeps the tail of long paths.
func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}
