// Command colockreplay is the offline forensics analyzer for colock's
// durable lock-event journal. Given a journal directory written by
// journal.Writer (colockshell -journal, or any embedder), it reconstructs
// what the live dashboards could only sample:
//
//	colockreplay -dir ./journal                 # full report
//	colockreplay -dir ./journal -json out.json  # machine-readable report
//	colockreplay -dir a -diff b                 # compare two journals
//	colockreplay -dir ./journal -around incident-0001-victim-txn7.jsonl
//
// The -around mode reads an incident dump's journal offset (and timestamp)
// and replays only the window leading up to the incident: the report's
// open-waits section is then the waits-for graph at the moment of the dump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"colock/internal/health"
	"colock/internal/journal"
	"colock/internal/trace"
)

func main() {
	var (
		dir     = flag.String("dir", "", "journal directory to analyze (required)")
		diffDir = flag.String("diff", "", "second journal directory: print a side-by-side comparison")
		around  = flag.String("around", "", "incident JSONL file: replay only the lead-up to the incident")
		before  = flag.Duration("before", time.Minute, "history window before the incident (with -around)")
		convoyN = flag.Int("convoy", 3, "minimum simultaneous waiters that count as a convoy")
		window  = flag.Duration("window", time.Second, "SLO replay window width")
		top     = flag.Int("top", 10, "rows in the top lists")
		jsonOut = flag.String("json", "", "write the machine-readable report to this path ('-' for stdout)")

		sloAbort = flag.Float64("slo-abort", 0.05, "SLO: max per-window abort rate")
		sloP99   = flag.Duration("slo-p99", 250*time.Millisecond, "SLO: max per-window wait p99")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "colockreplay: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := Config{
		ConvoyDepth: *convoyN,
		Window:      *window,
		Top:         *top,
		SLO:         health.SLO{MaxAbortRate: *sloAbort, MaxWaitP99: *sloP99, MaxWaiterDepth: 64},
	}

	recs, torn, err := journal.ReadAll(*dir)
	if err != nil {
		fatal(err)
	}

	var inc *trace.Incident
	if *around != "" {
		inc, err = trace.ParseIncidentFile(*around)
		if err != nil {
			fatal(err)
		}
		recs = filterAround(recs, inc, *before)
	}

	rep := analyze(*dir, recs, torn, cfg)

	if *diffDir != "" {
		recsB, tornB, err := journal.ReadAll(*diffDir)
		if err != nil {
			fatal(err)
		}
		repB := analyze(*diffDir, recsB, tornB, cfg)
		printDiff(os.Stdout, rep, repB)
		if *jsonOut != "" {
			writeJSON(*jsonOut, map[string]*Report{"a": rep, "b": repB})
		}
		return
	}

	if inc != nil {
		printIncidentHeader(os.Stdout, *around, inc, len(recs))
	}
	printReport(os.Stdout, rep, cfg)
	if *jsonOut != "" {
		writeJSON(*jsonOut, rep)
	}
}

// filterAround keeps the records leading up to the incident: Seq at or below
// the dump's journal offset (when one was recorded) and At inside
// [incident-before, incident]. Incident timestamps come from the same
// process clock as event timestamps, so the time bound is sound; the offset
// bound additionally cuts events journaled after the dump with earlier
// timestamps.
func filterAround(recs []journal.Record, inc *trace.Incident, before time.Duration) []journal.Record {
	var out []journal.Record
	from := inc.At.Add(-before)
	for _, r := range recs {
		if inc.JournalOffset > 0 && r.Seq > inc.JournalOffset {
			continue
		}
		if !inc.At.IsZero() && !r.At.IsZero() {
			if r.At.After(inc.At) || r.At.Before(from) {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "colockreplay: %v\n", err)
	os.Exit(1)
}

// writeJSON writes v indented to path, or stdout for "-".
func writeJSON(path string, v any) {
	var f *os.File
	if path == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}
